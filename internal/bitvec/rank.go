package bitvec

import (
	"fmt"
	"math/bits"
)

// RankIndex is a rank9-style rank/select directory over a Vector
// (Vigna, "Broadword Implementation of Rank/Select Queries"). The
// vector is divided into superblocks of 8 words (512 bits); for each
// superblock the index stores the absolute number of set bits before
// it, plus seven 9-bit relative counts (one per interior word) packed
// into a single uint64. Space overhead is 2 words per 8 payload words
// (25%), and both Rank1 and Select1 touch O(1) superblocks.
//
// The index is a snapshot: mutating the underlying Vector after
// NewRankIndex invalidates it.
type RankIndex struct {
	v    *Vector
	abs  []uint64 // per superblock: set bits strictly before it
	rel  []uint64 // per superblock: packed 9-bit cumulative word counts
	ones int
}

// NewRankIndex builds the directory in one pass over the vector.
func NewRankIndex(v *Vector) *RankIndex {
	nsb := (len(v.words) + 7) / 8
	r := &RankIndex{
		v:   v,
		abs: make([]uint64, nsb+1),
		rel: make([]uint64, nsb),
	}
	total := uint64(0)
	for sb := 0; sb < nsb; sb++ {
		r.abs[sb] = total
		within := uint64(0)
		for j := 0; j < 8; j++ {
			w := sb*8 + j
			if j > 0 {
				r.rel[sb] |= (within & 0x1ff) << (9 * (j - 1))
			}
			if w < len(v.words) {
				within += uint64(bits.OnesCount64(v.words[w]))
			}
		}
		total += within
	}
	r.abs[nsb] = total
	r.ones = int(total)
	return r
}

// Ones returns the total number of set bits.
func (r *RankIndex) Ones() int { return r.ones }

// relCount returns the number of set bits in words [8*sb, 8*sb+j).
func (r *RankIndex) relCount(sb, j int) uint64 {
	if j == 0 {
		return 0
	}
	return (r.rel[sb] >> (9 * (j - 1))) & 0x1ff
}

// Rank1 returns the number of set bits in positions [0, i). i may equal
// Len(), giving the total population count.
func (r *RankIndex) Rank1(i int) (int, error) {
	if i < 0 || i > r.v.n {
		return 0, fmt.Errorf("bitvec: rank index %d out of range [0, %d]", i, r.v.n)
	}
	w := i >> 6
	sb := w >> 3
	count := r.abs[sb] + r.relCount(sb, w&7)
	if w < len(r.v.words) {
		if low := uint(i & 63); low != 0 {
			count += uint64(bits.OnesCount64(r.v.words[w] << (64 - low)))
		}
	}
	return int(count), nil
}

// Select1 returns the position of the k-th set bit (0-based), i.e. the
// smallest p with Rank1(p+1) == k+1.
func (r *RankIndex) Select1(k int) (int, error) {
	if k < 0 || k >= r.ones {
		return 0, fmt.Errorf("bitvec: select index %d out of range [0, %d)", k, r.ones)
	}
	// Binary search for the superblock holding the k-th one.
	lo, hi := 0, len(r.abs)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if r.abs[mid] <= uint64(k) {
			lo = mid
		} else {
			hi = mid
		}
	}
	sb := lo
	rem := uint64(k) - r.abs[sb]
	// Scan the packed relative counts for the word.
	j := 0
	for j < 7 && r.relCount(sb, j+1) <= rem {
		j++
	}
	rem -= r.relCount(sb, j)
	w := sb*8 + j
	word := r.v.words[w]
	// Select within the word, byte by byte.
	base := w << 6
	for b := 0; b < 8; b++ {
		c := bits.OnesCount8(uint8(word >> (8 * b)))
		if uint64(c) > rem {
			byteVal := uint8(word >> (8 * b))
			for bit := 0; bit < 8; bit++ {
				if byteVal&(1<<bit) != 0 {
					if rem == 0 {
						return base + 8*b + bit, nil
					}
					rem--
				}
			}
		}
		rem -= uint64(c)
	}
	return 0, fmt.Errorf("bitvec: select directory corrupt at bit %d", k)
}

// Bytes returns the in-memory size of the directory (excluding the
// underlying vector payload).
func (r *RankIndex) Bytes() int64 {
	return 8 * int64(len(r.abs)+len(r.rel))
}
