package debruijn

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dna"
	"repro/internal/readsim"
)

func TestPackUnpackRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		if len(raw) == 0 || len(raw) > 32 {
			return true
		}
		s := make(dna.Seq, len(raw))
		for i, b := range raw {
			s[i] = b & 3
		}
		return unpackKmer(packKmer(s), len(s)).Equal(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRevCompPacked(t *testing.T) {
	s := dna.MustParseSeq("ACGTTGCA")
	v := packKmer(s)
	want := packKmer(s.ReverseComplement())
	if got := revComp(v, 8); got != want {
		t.Errorf("revComp = %x, want %x", got, want)
	}
	// Involution.
	if revComp(revComp(v, 8), 8) != v {
		t.Error("revComp not involutive")
	}
}

func TestCanonicalStrandIndependent(t *testing.T) {
	s := dna.MustParseSeq("ACGTTGCAGGATCC")[:13]
	v := packKmer(s)
	rc := revComp(v, 13)
	if canonical(v, 13) != canonical(rc, 13) {
		t.Error("canonical differs between strands")
	}
}

func TestBuildCountsKmers(t *testing.T) {
	rs := dna.NewReadSet(1, 16)
	rs.Append(dna.MustParseSeq("ACGTACGT")) // 4-mers: ACGT CGTA GTAC TACG ACGT
	g, err := Build(Config{K: 4, MinCount: 1}, rs)
	if err != nil {
		t.Fatal(err)
	}
	// Canonical classes: ACGT(=RC ACGT), CGTA/TACG (RCs of each other),
	// GTAC(=RC GTAC) -> 3 distinct canonical k-mers.
	if g.NumKmers() != 3 {
		t.Errorf("NumKmers = %d, want 3", g.NumKmers())
	}
}

func TestMinCountFiltersErrors(t *testing.T) {
	genome := readsim.Genome(readsim.GenomeParams{Length: 800, Seed: 61})
	clean := readsim.Simulate(genome, readsim.ReadParams{ReadLen: 50, Coverage: 15, Seed: 62})
	noisy := readsim.Simulate(genome, readsim.ReadParams{ReadLen: 50, Coverage: 15, Seed: 62, ErrorRate: 0.01})
	gAll, err := Build(Config{K: 21, MinCount: 1}, noisy)
	if err != nil {
		t.Fatal(err)
	}
	gSolid, err := Build(Config{K: 21, MinCount: 3}, noisy)
	if err != nil {
		t.Fatal(err)
	}
	gClean, err := Build(Config{K: 21, MinCount: 1}, clean)
	if err != nil {
		t.Fatal(err)
	}
	if gAll.NumKmers() <= gClean.NumKmers() {
		t.Error("errors should inflate the k-mer set")
	}
	if gSolid.NumKmers() >= gAll.NumKmers() {
		t.Error("MinCount should remove error k-mers")
	}
	// Solid set should approach the clean set.
	ratio := float64(gSolid.NumKmers()) / float64(gClean.NumKmers())
	if ratio < 0.8 || ratio > 1.2 {
		t.Errorf("solid/clean k-mer ratio = %.2f", ratio)
	}
}

func TestContigsAreGenomeSubstrings(t *testing.T) {
	genome := readsim.Genome(readsim.GenomeParams{Length: 3000, Seed: 63})
	reads := readsim.Simulate(genome, readsim.ReadParams{ReadLen: 60, Coverage: 15, Seed: 64})
	contigs, g, err := Assemble(Config{K: 25, MinCount: 1}, reads)
	if err != nil {
		t.Fatal(err)
	}
	if len(contigs) == 0 || g.NumKmers() == 0 {
		t.Fatal("no assembly")
	}
	gs, grc := genome.String(), genome.ReverseComplement().String()
	longest := 0
	for i, c := range contigs {
		s := c.String()
		if !strings.Contains(gs, s) && !strings.Contains(grc, s) {
			t.Errorf("contig %d (len %d) not a genome substring", i, len(c))
		}
		if len(c) > longest {
			longest = len(c)
		}
	}
	if longest < 500 {
		t.Errorf("longest contig = %d, expected long unitigs from clean 15x data", longest)
	}
}

func TestRepeatCollapse(t *testing.T) {
	// The paper's Section II-A.1 point: repeats longer than k fragment
	// the de Bruijn graph. A genome with a planted repeat longer than k
	// must yield more, shorter contigs than a repeat-free genome.
	plain := readsim.Genome(readsim.GenomeParams{Length: 4000, Seed: 65})
	repeats := readsim.Genome(readsim.GenomeParams{Length: 4000, RepeatLen: 120, RepeatCount: 6, Seed: 65})
	n50 := func(genome dna.Seq) int {
		reads := readsim.Simulate(genome, readsim.ReadParams{ReadLen: 60, Coverage: 15, Seed: 66})
		contigs, _, err := Assemble(Config{K: 25, MinCount: 1}, reads)
		if err != nil {
			t.Fatal(err)
		}
		total, best := 0, 0
		lens := make([]int, 0, len(contigs))
		for _, c := range contigs {
			lens = append(lens, len(c))
			total += len(c)
		}
		cum := 0
		for {
			best = 0
			for i, l := range lens {
				if l > best {
					best = l
					lens[i] = 0
				}
			}
			cum += best
			if 2*cum >= total || best == 0 {
				return best
			}
		}
	}
	if plainN50, repN50 := n50(plain), n50(repeats); repN50 >= plainN50 {
		t.Errorf("repeats should fragment the dBG assembly: plain N50 %d, repeat N50 %d",
			plainN50, repN50)
	}
}

func TestMemoryGrowsWithDataset(t *testing.T) {
	// The structural claim behind the paper's Table VI footnote: the
	// de Bruijn structure is resident and grows with the dataset.
	small := readsim.Genome(readsim.GenomeParams{Length: 2000, Seed: 67})
	large := readsim.Genome(readsim.GenomeParams{Length: 8000, Seed: 67})
	mem := func(genome dna.Seq) int64 {
		reads := readsim.Simulate(genome, readsim.ReadParams{ReadLen: 50, Coverage: 10, Seed: 68})
		g, err := Build(Config{K: 25, MinCount: 1}, reads)
		if err != nil {
			t.Fatal(err)
		}
		return g.ApproxBytes()
	}
	ms, ml := mem(small), mem(large)
	if ml < 3*ms {
		t.Errorf("4x genome should need ~4x k-mer memory: %d -> %d", ms, ml)
	}
}

func TestConfigValidate(t *testing.T) {
	for _, bad := range []Config{{K: 1, MinCount: 1}, {K: 33, MinCount: 1}, {K: 21, MinCount: 0}} {
		if err := bad.Validate(); err == nil {
			t.Errorf("config %+v should be invalid", bad)
		}
	}
	rs := dna.NewReadSet(1, 4)
	rs.Append(dna.MustParseSeq("AC")) // shorter than K: skipped, not fatal
	g, err := Build(Config{K: 21, MinCount: 1}, rs)
	if err != nil || g.NumKmers() != 0 {
		t.Errorf("short reads should be skipped: %v, %d", err, g.NumKmers())
	}
}
