// Package debruijn implements a k-mer de Bruijn graph assembler, the
// *other* family of assemblers the paper positions LaSAGNA against
// (Sections II-A.1 and IV-C.3).
//
// The paper excludes de Bruijn tools from Table VI because "most of them
// are not designed for processing large datasets on a single machine
// (i.e., failed with out-of-memory error)": a de Bruijn assembler keeps
// its whole k-mer structure resident, so memory grows with the number of
// distinct k-mers, while LaSAGNA's working set is fixed by its block
// sizes. This package reproduces that structural contrast measurably
// (see ApproxBytes) and provides the algorithm itself: canonical k-mer
// counting, solid-k-mer filtering, and unitig extraction by unique
// extension — the approach of Velvet/Minia-style assemblers. The paper
// also notes the method's biological weakness: k-mers collapse repeats
// longer than k (Section II-A.1), which shows up as shorter contigs on
// repeat-rich genomes.
package debruijn

import (
	"fmt"

	"repro/internal/dna"
)

// Config parameterizes the assembler.
type Config struct {
	// K is the k-mer length (<= 32 so a k-mer packs into a uint64).
	K int
	// MinCount drops k-mers seen fewer times (error filtering); 1 keeps
	// everything.
	MinCount int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.K < 2 || c.K > 32 {
		return fmt.Errorf("debruijn: K must be in [2,32], got %d", c.K)
	}
	if c.MinCount < 1 {
		return fmt.Errorf("debruijn: MinCount must be >= 1, got %d", c.MinCount)
	}
	return nil
}

// packKmer packs s[0:k] into 2-bit codes, most significant base first.
func packKmer(s dna.Seq) uint64 {
	var v uint64
	for _, c := range s {
		v = v<<2 | uint64(c&3)
	}
	return v
}

// unpackKmer expands a packed k-mer.
func unpackKmer(v uint64, k int) dna.Seq {
	out := make(dna.Seq, k)
	for i := k - 1; i >= 0; i-- {
		out[i] = byte(v & 3)
		v >>= 2
	}
	return out
}

// revComp returns the reverse complement of a packed k-mer.
func revComp(v uint64, k int) uint64 {
	var r uint64
	for i := 0; i < k; i++ {
		r = r<<2 | (3 - (v & 3))
		v >>= 2
	}
	return r
}

// canonical returns the smaller of a k-mer and its reverse complement —
// the strand-independent representative.
func canonical(v uint64, k int) uint64 {
	if rc := revComp(v, k); rc < v {
		return rc
	}
	return v
}

// Graph is the de Bruijn graph: the set of solid canonical k-mers.
type Graph struct {
	k     int
	mask  uint64
	kmers map[uint64]uint32 // canonical k-mer -> count
}

// Build counts canonical k-mers over all reads and keeps the solid ones.
// The whole structure lives in host memory — the property that makes this
// family of assemblers memory-bound on large datasets.
func Build(cfg Config, rs *dna.ReadSet) (*Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &Graph{
		k:     cfg.K,
		mask:  (uint64(1) << (2 * cfg.K)) - 1,
		kmers: make(map[uint64]uint32),
	}
	for r := uint32(0); r < uint32(rs.NumReads()); r++ {
		read := rs.Read(r)
		if len(read) < cfg.K {
			continue
		}
		// Rolling pack: shift in one base at a time.
		var cur uint64
		for i, c := range read {
			cur = (cur<<2 | uint64(c&3)) & g.mask
			if i >= cfg.K-1 {
				g.kmers[canonical(cur, g.k)]++
			}
		}
	}
	if cfg.MinCount > 1 {
		for km, n := range g.kmers {
			if int(n) < cfg.MinCount {
				delete(g.kmers, km)
			}
		}
	}
	return g, nil
}

// K returns the k-mer length.
func (g *Graph) K() int { return g.k }

// NumKmers returns the number of solid canonical k-mers.
func (g *Graph) NumKmers() int { return len(g.kmers) }

// has reports whether the (non-canonical) k-mer is present.
func (g *Graph) has(v uint64) bool {
	_, ok := g.kmers[canonical(v, g.k)]
	return ok
}

// successors returns the present forward extensions of v (up to 4).
func (g *Graph) successors(v uint64) []uint64 {
	var out []uint64
	for b := uint64(0); b < 4; b++ {
		next := (v<<2 | b) & g.mask
		if g.has(next) {
			out = append(out, next)
		}
	}
	return out
}

// predecessors returns the present backward extensions of v (up to 4).
func (g *Graph) predecessors(v uint64) []uint64 {
	var out []uint64
	for b := uint64(0); b < 4; b++ {
		prev := v>>2 | b<<(2*(g.k-1))
		if g.has(prev) {
			out = append(out, prev)
		}
	}
	return out
}

// Contigs extracts unitigs: maximal walks where every step has a unique
// successor whose predecessor is also unique. Each canonical k-mer joins
// at most one contig (a contig and its reverse complement count once).
func (g *Graph) Contigs() []dna.Seq {
	visited := make(map[uint64]bool, len(g.kmers))
	var contigs []dna.Seq

	walk := func(start uint64) dna.Seq {
		seq := unpackKmer(start, g.k)
		cur := start
		visited[canonical(cur, g.k)] = true
		for {
			succs := g.successors(cur)
			if len(succs) != 1 {
				return seq
			}
			next := succs[0]
			if len(g.predecessors(next)) != 1 || visited[canonical(next, g.k)] {
				return seq
			}
			visited[canonical(next, g.k)] = true
			seq = append(seq, byte(next&3))
			cur = next
		}
	}

	// Stage 1: start from k-mers that cannot be extended backwards
	// unambiguously (branch points and tips), in both orientations.
	for km := range g.kmers {
		for _, v := range []uint64{km, revComp(km, g.k)} {
			if visited[canonical(v, g.k)] {
				continue
			}
			preds := g.predecessors(v)
			if len(preds) == 1 && len(g.successors(preds[0])) == 1 {
				continue // interior of a chain; a start will reach it
			}
			contigs = append(contigs, walk(v))
		}
	}
	// Stage 2: residual cycles.
	for km := range g.kmers {
		if !visited[canonical(km, g.k)] {
			contigs = append(contigs, walk(km))
		}
	}
	return contigs
}

// ApproxBytes estimates the resident memory of the k-mer structure
// (~48 bytes per map entry in Go). Unlike LaSAGNA's block-bounded working
// set, this grows with the dataset — the paper's stated reason for the
// out-of-memory failures of de Bruijn tools on large inputs.
func (g *Graph) ApproxBytes() int64 {
	return int64(len(g.kmers)) * 48
}

// Assemble is the one-call pipeline: build, then extract contigs.
func Assemble(cfg Config, rs *dna.ReadSet) ([]dna.Seq, *Graph, error) {
	g, err := Build(cfg, rs)
	if err != nil {
		return nil, nil, err
	}
	return g.Contigs(), g, nil
}
