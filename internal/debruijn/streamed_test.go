package debruijn

import (
	"testing"

	"repro/internal/gpu"
	"repro/internal/readsim"
	"repro/internal/stats"
)

func streamCfg(t *testing.T, mh, md int) StreamConfig {
	t.Helper()
	return StreamConfig{
		Device:           gpu.NewDevice(gpu.K40, nil),
		HostBlockPairs:   mh,
		DeviceBlockPairs: md,
		TempDir:          t.TempDir(),
	}
}

func TestBuildStreamedMatchesInMemory(t *testing.T) {
	genome := readsim.Genome(readsim.GenomeParams{Length: 2000, Seed: 71})
	reads := readsim.Simulate(genome, readsim.ReadParams{
		ReadLen: 60, Coverage: 12, Seed: 72, ErrorRate: 0.005,
	})
	for _, minCount := range []int{1, 3} {
		cfg := Config{K: 21, MinCount: minCount}
		want, err := Build(cfg, reads)
		if err != nil {
			t.Fatal(err)
		}
		got, st, err := BuildStreamed(cfg, streamCfg(t, 4096, 512), reads)
		if err != nil {
			t.Fatal(err)
		}
		if got.NumKmers() != want.NumKmers() {
			t.Fatalf("minCount=%d: streamed %d k-mers, in-memory %d",
				minCount, got.NumKmers(), want.NumKmers())
		}
		for km, n := range want.kmers {
			if got.kmers[km] != n {
				t.Fatalf("minCount=%d: count mismatch for %x: %d vs %d",
					minCount, km, got.kmers[km], n)
			}
		}
		if st.SolidKmers != int64(want.NumKmers()) {
			t.Errorf("stats.SolidKmers = %d", st.SolidKmers)
		}
		if minCount > 1 && st.DroppedKmers == 0 {
			t.Error("noisy data should produce dropped singleton k-mers")
		}
		if st.SortStats.Pairs != st.TotalKmers {
			t.Errorf("sorted %d pairs, emitted %d", st.SortStats.Pairs, st.TotalKmers)
		}
	}
}

func TestBuildStreamedContigsIdentical(t *testing.T) {
	genome := readsim.Genome(readsim.GenomeParams{Length: 1500, Seed: 73})
	reads := readsim.Simulate(genome, readsim.ReadParams{ReadLen: 50, Coverage: 10, Seed: 74})
	cfg := Config{K: 25, MinCount: 1}
	mem, err := Build(cfg, reads)
	if err != nil {
		t.Fatal(err)
	}
	streamed, _, err := BuildStreamed(cfg, streamCfg(t, 2048, 256), reads)
	if err != nil {
		t.Fatal(err)
	}
	a, b := mem.Contigs(), streamed.Contigs()
	ta, tb := 0, 0
	for _, c := range a {
		ta += len(c)
	}
	for _, c := range b {
		tb += len(c)
	}
	if len(a) != len(b) || ta != tb {
		t.Errorf("contig sets differ: %d/%d contigs, %d/%d bases", len(a), len(b), ta, tb)
	}
}

func TestBuildStreamedBoundedWorkingSet(t *testing.T) {
	// The Section IV-C.5 argument: on noisy data, the in-memory build
	// must hold every error singleton, while the streamed build's
	// resident set is the sort buffers plus the solid survivors.
	genome := readsim.Genome(readsim.GenomeParams{Length: 4000, Seed: 75})
	reads := readsim.Simulate(genome, readsim.ReadParams{
		ReadLen: 60, Coverage: 20, Seed: 76, ErrorRate: 0.02,
	})
	cfg := Config{K: 25, MinCount: 3}
	raw, err := Build(Config{K: 25, MinCount: 1}, reads)
	if err != nil {
		t.Fatal(err)
	}
	var hostMem stats.MemTracker
	scfg := streamCfg(t, 2048, 256)
	scfg.HostMem = &hostMem
	solid, st, err := BuildStreamed(cfg, scfg, reads)
	if err != nil {
		t.Fatal(err)
	}
	if solid.ApproxBytes() >= raw.ApproxBytes()/2 {
		t.Errorf("solid set (%d B) should be far below the raw set (%d B)",
			solid.ApproxBytes(), raw.ApproxBytes())
	}
	if st.DroppedKmers < st.SolidKmers {
		t.Errorf("2%% errors at 20x should drop more k-mers than survive: dropped=%d solid=%d",
			st.DroppedKmers, st.SolidKmers)
	}
	// The streamed build's tracked working set (sort buffers + result)
	// stays below the raw resident structure.
	if hostMem.Peak() >= raw.ApproxBytes() {
		t.Errorf("streamed peak %d should undercut raw resident %d",
			hostMem.Peak(), raw.ApproxBytes())
	}
}

func TestBuildStreamedErrors(t *testing.T) {
	reads := readsim.Simulate(readsim.Genome(readsim.GenomeParams{Length: 300, Seed: 77}),
		readsim.ReadParams{ReadLen: 40, Coverage: 3, Seed: 78})
	if _, _, err := BuildStreamed(Config{K: 0, MinCount: 1}, streamCfg(t, 64, 8), reads); err == nil {
		t.Error("invalid K should fail")
	}
	bad := StreamConfig{}
	if _, _, err := BuildStreamed(Config{K: 21, MinCount: 1}, bad, reads); err == nil {
		t.Error("missing device/tempdir should fail")
	}
}
