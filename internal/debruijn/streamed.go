package debruijn

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/costmodel"
	"repro/internal/dna"
	"repro/internal/extsort"
	"repro/internal/gpu"
	"repro/internal/kv"
	"repro/internal/kvio"
	"repro/internal/stats"
)

// BuildStreamed counts k-mers through LaSAGNA's two-level hybrid-memory
// machinery instead of an in-memory hash map: canonical k-mers are
// emitted as (k-mer, 1) tuples to disk, externally sorted with the same
// device-chunk/host-block/disk-run scheme the assembly pipeline uses, and
// counted in a single streaming scan that keeps only solid k-mers
// resident.
//
// This is the paper's Section IV-C.5 claim made concrete: "the
// hybrid-memory model can apply to other types of workloads (e.g.,
// MapReduce-like processing) that require sorting". On error-laden data
// the raw k-mer multiset is dominated by singleton error k-mers; the
// in-memory Build must hold all of them at once, while the streamed
// build's working set is bounded by the sort's block sizes plus the
// (much smaller) solid survivors.
type StreamConfig struct {
	Device           *gpu.Device
	Meter            *costmodel.Meter  // may be nil
	HostMem          *stats.MemTracker // may be nil
	HostBlockPairs   int
	DeviceBlockPairs int
	TempDir          string
}

// StreamStats reports the streamed build's work.
type StreamStats struct {
	TotalKmers   int64 // k-mer occurrences emitted
	SolidKmers   int64 // distinct k-mers kept
	DroppedKmers int64 // distinct k-mers below MinCount
	SortStats    extsort.Stats
}

// BuildStreamed counts k-mers with bounded memory and returns the same
// graph Build would produce.
func BuildStreamed(cfg Config, scfg StreamConfig, rs *dna.ReadSet) (*Graph, StreamStats, error) {
	var st StreamStats
	if err := cfg.Validate(); err != nil {
		return nil, st, err
	}
	if scfg.Device == nil || scfg.TempDir == "" {
		return nil, st, fmt.Errorf("debruijn: streamed build needs a device and temp dir")
	}

	// Map: stream (canonical k-mer, 1) tuples to disk. The device charge
	// mirrors a GPU extraction kernel (one pass over the bases).
	raw := filepath.Join(scfg.TempDir, "kmers.kv")
	w, err := kvio.NewWriter(raw, scfg.Meter)
	if err != nil {
		return nil, st, err
	}
	mask := (uint64(1) << (2 * cfg.K)) - 1
	for r := uint32(0); r < uint32(rs.NumReads()); r++ {
		read := rs.Read(r)
		if len(read) < cfg.K {
			continue
		}
		var cur uint64
		for i, c := range read {
			cur = (cur<<2 | uint64(c&3)) & mask
			if i >= cfg.K-1 {
				p := kv.Pair{Key: kv.Key{Hi: canonical(cur, cfg.K)}, Val: 1}
				if err := w.Write(p); err != nil {
					w.Close()
					return nil, st, err
				}
				st.TotalKmers++
			}
		}
	}
	if err := w.Close(); err != nil {
		return nil, st, err
	}
	scfg.Device.ChargeKernel(rs.TotalBases(), rs.TotalBases())

	// Sort: the two-level hybrid external sort.
	sorted := filepath.Join(scfg.TempDir, "kmers.sorted.kv")
	st.SortStats, err = extsort.SortFile(context.Background(), extsort.Config{
		Device:           scfg.Device,
		Meter:            scfg.Meter,
		HostMem:          scfg.HostMem,
		HostBlockPairs:   scfg.HostBlockPairs,
		DeviceBlockPairs: scfg.DeviceBlockPairs,
		TempDir:          scfg.TempDir,
	}, raw, sorted)
	if err != nil {
		return nil, st, err
	}
	if err := os.Remove(raw); err != nil {
		return nil, st, err
	}

	// Reduce: stream the sorted multiset, counting runs of equal k-mers;
	// only solid k-mers become resident.
	g := &Graph{k: cfg.K, mask: mask, kmers: make(map[uint64]uint32)}
	r, err := kvio.NewReader(sorted, scfg.Meter)
	if err != nil {
		return nil, st, err
	}
	defer r.Close()
	defer os.Remove(sorted)
	buf := make([]kv.Pair, 4096)
	var runKey uint64
	var runLen uint32
	haveRun := false
	flush := func() {
		if !haveRun {
			return
		}
		if int(runLen) >= cfg.MinCount {
			g.kmers[runKey] = runLen
			st.SolidKmers++
		} else {
			st.DroppedKmers++
		}
	}
	for {
		n, err := r.ReadBatch(buf)
		for _, p := range buf[:n] {
			if haveRun && p.Key.Hi == runKey {
				runLen++
				continue
			}
			flush()
			runKey, runLen, haveRun = p.Key.Hi, 1, true
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, st, err
		}
	}
	flush()
	if scfg.HostMem != nil {
		scfg.HostMem.Add(g.ApproxBytes())
		defer scfg.HostMem.Release(g.ApproxBytes())
	}
	return g, st, nil
}
