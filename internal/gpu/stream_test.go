package gpu

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/kv"
)

func streamProfile() costmodel.Profile {
	return costmodel.Profile{
		DiskReadBps:     100,
		DiskWriteBps:    100,
		NetBps:          100,
		HostMemBps:      100,
		DeviceMemBps:    100,
		DeviceOpsPerSec: 100,
		PCIeBps:         100,
	}
}

func TestStreamOpsExecuteInEnqueueOrder(t *testing.T) {
	d := testDevice()
	s := d.NewStream("order", nil, true)
	var mu sync.Mutex
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		s.Enqueue("op", func() error {
			mu.Lock()
			got = append(got, i)
			mu.Unlock()
			return nil
		})
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("executed %d ops, want 100", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("op %d executed at position %d: streams must preserve enqueue order", v, i)
		}
	}
}

func TestStreamSyncDrainsAllEnqueued(t *testing.T) {
	d := testDevice()
	s := d.NewStream("drain", nil, true)
	defer s.Close()
	var done [64]bool
	for i := range done {
		i := i
		s.Enqueue("op", func() error { done[i] = true; return nil })
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	// Sync's barrier ack is the happens-before edge making the executor's
	// writes visible here.
	for i, ok := range done {
		if !ok {
			t.Fatalf("op %d not executed after Sync", i)
		}
	}
}

func TestStreamErrorLatchesAndSkips(t *testing.T) {
	d := testDevice()
	s := d.NewStream("err", nil, true)
	defer s.Close()
	boom := errors.New("boom")
	ran := false
	s.Enqueue("fail", func() error { return boom })
	if err := s.Sync(); !errors.Is(err, boom) {
		t.Fatalf("Sync = %v, want latched %v", err, boom)
	}
	s.Enqueue("after", func() error { ran = true; return nil })
	if err := s.Sync(); !errors.Is(err, boom) {
		t.Fatalf("Sync after more ops = %v, want sticky %v", err, boom)
	}
	if ran {
		t.Fatal("op after latched error must be skipped")
	}
	if err := s.Close(); !errors.Is(err, boom) {
		t.Fatalf("Close = %v, want %v", err, boom)
	}
}

func TestStreamInlineExecutesImmediately(t *testing.T) {
	d := testDevice()
	s := d.NewStream("inline", nil, false)
	ran := false
	s.Enqueue("op", func() error { ran = true; return nil })
	if !ran {
		t.Fatal("inline stream must run the op before Enqueue returns")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestStreamCloseIdempotent(t *testing.T) {
	d := testDevice()
	s := d.NewStream("close", nil, true)
	s.Enqueue("op", func() error { return nil })
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// Two streams driving different tiers of one timeline must produce
// genuinely overlapping modeled busy intervals — the heart of the
// double-buffered prefetch model.
func TestStreamsModeledIntervalsOverlap(t *testing.T) {
	d := testDevice()
	lg := costmodel.NewOverlapLedger(streamProfile())
	tl := lg.NewTimeline()
	io := d.NewStream("io", tl.Line("io"), true)
	cmp := d.NewStream("cmp", tl.Line("cmp"), false)

	// io prefetches while cmp computes: both charge 2 modeled seconds.
	io.Enqueue("read", func() error {
		io.Charge(costmodel.TierDiskRead, 200)
		return nil
	})
	cmp.Enqueue("kernel", func() error {
		cmp.Charge(costmodel.TierDeviceOps, 200)
		return nil
	})
	if err := io.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cmp.Close(); err != nil {
		t.Fatal(err)
	}
	tl.Commit()

	ioSpans := io.Line().Spans()
	cmpSpans := cmp.Line().Spans()
	if len(ioSpans) != 1 || len(cmpSpans) != 1 {
		t.Fatalf("spans = %d/%d, want 1/1", len(ioSpans), len(cmpSpans))
	}
	a, b := ioSpans[0], cmpSpans[0]
	if a.Start >= b.End || b.Start >= a.End {
		t.Fatalf("spans [%v,%v) and [%v,%v) do not overlap", a.Start, a.End, b.Start, b.End)
	}
	if saved := lg.SavedSeconds(); saved <= 0 {
		t.Fatalf("saved = %v, want > 0 from overlapping streams", saved)
	}
}

// WaitModeled is enqueued, so it applies between the ops around it in
// stream order, not at call time.
func TestStreamWaitModeledAppliesInStreamOrder(t *testing.T) {
	d := testDevice()
	lg := costmodel.NewOverlapLedger(streamProfile())
	tl := lg.NewTimeline()
	s := d.NewStream("s", tl.Line("s"), true)
	s.Enqueue("a", func() error {
		s.Charge(costmodel.TierDiskRead, 100) // [0, 1)
		return nil
	})
	s.WaitModeled(5)
	s.Enqueue("b", func() error {
		s.Charge(costmodel.TierDiskRead, 100) // must start at 5, not 1
		return nil
	})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	spans := s.Line().Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	if spans[1].Start != 5 {
		t.Fatalf("second charge starts at %v, want 5 (after WaitModeled)", spans[1].Start)
	}
}

// Stream kernel wrappers must meter exactly what the Device entry points
// meter, for identical inputs — the counter-identity contract.
func TestStreamKernelsMeterIdenticalToDevice(t *testing.T) {
	mkPairs := func() []kv.Pair {
		ps := make([]kv.Pair, 64)
		for i := range ps {
			ps[i] = kv.Pair{Key: kv.Key{Hi: uint64(i * 37 % 19), Lo: uint64(i * 13 % 7)}, Val: uint32(i)}
		}
		return ps
	}

	direct := testDevice()
	ps := mkPairs()
	direct.SortPairs(ps)
	a, b := ps[:20], ps[20:]
	merged := direct.MergePairsInto(make([]kv.Pair, 0, len(ps)), a, b)
	lo := direct.VecLowerBound(a, merged, nil)
	hi := direct.VecUpperBound(a, merged, nil)
	direct.VecDifference(hi, lo, nil)
	want := direct.Meter().Snapshot()

	streamed := testDevice()
	s := streamed.NewStream("k", nil, false)
	ps2 := mkPairs()
	s.SortPairs(ps2)
	a2, b2 := ps2[:20], ps2[20:]
	merged2 := s.MergePairsInto(make([]kv.Pair, 0, len(ps2)), a2, b2)
	lo2 := s.VecLowerBound(a2, merged2, nil)
	hi2 := s.VecUpperBound(a2, merged2, nil)
	s.VecDifference(hi2, lo2, nil)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	got := streamed.Meter().Snapshot()

	if got != want {
		t.Fatalf("stream kernel counters = %+v, want device-identical %+v", got, want)
	}
	for i := range ps {
		if ps2[i] != ps[i] {
			t.Fatalf("sorted output diverged at %d", i)
		}
	}
	for i := range merged {
		if merged2[i] != merged[i] {
			t.Fatalf("merged output diverged at %d", i)
		}
	}
}

// Async copy ops must charge the meter exactly like the synchronous
// Device copies.
func TestStreamAsyncCopiesMeterPCIe(t *testing.T) {
	d := testDevice()
	s := d.NewStream("copies", nil, true)
	s.CopyToDeviceAsync(1000)
	s.CopyFromDeviceAsync(500)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := d.Meter().Snapshot().PCIeBytes; got != 1500 {
		t.Fatalf("PCIe bytes = %d, want 1500", got)
	}
}

// TestStreamStress hammers two async streams and an inline stream from
// their owning goroutines while a third goroutine polls Sync, verifying
// under -race that the executor/enqueuer handoff is clean and no op is
// lost or reordered.
func TestStreamStress(t *testing.T) {
	d := testDevice()
	lg := costmodel.NewOverlapLedger(streamProfile())
	const perStream = 500
	var wg sync.WaitGroup
	totals := make([]int64, 3)
	for si := 0; si < 3; si++ {
		si := si
		wg.Add(1)
		go func() {
			defer wg.Done()
			tl := lg.NewTimeline()
			defer tl.Commit()
			s := d.NewStream("stress", tl.Line("l"), si < 2)
			var seq int64
			for i := 0; i < perStream; i++ {
				i := i
				s.Enqueue("op", func() error {
					if seq != int64(i) {
						t.Errorf("stream %d: op %d ran at position %d", si, i, seq)
					}
					seq++
					s.Charge(costmodel.TierDeviceOps, 1)
					d.ChargeKernel(0, 1)
					return nil
				})
				if i%97 == 0 {
					if err := s.Sync(); err != nil {
						t.Error(err)
					}
				}
			}
			if err := s.Close(); err != nil {
				t.Error(err)
			}
			totals[si] = seq
		}()
	}
	wg.Wait()
	for si, n := range totals {
		if n != perStream {
			t.Errorf("stream %d executed %d ops, want %d", si, n, perStream)
		}
	}
	if got := d.Meter().Snapshot().DeviceOps; got != 3*perStream {
		t.Fatalf("device ops = %d, want %d", got, 3*perStream)
	}
	if got := lg.Units(); got != 3 {
		t.Fatalf("ledger units = %d, want 3", got)
	}
}
