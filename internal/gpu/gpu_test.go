package gpu

import (
	"errors"
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/costmodel"
	"repro/internal/kv"
)

func testDevice() *Device {
	return NewDevice(Spec{Name: "test", Cores: 1000, ClockMHz: 1000,
		MemBandwidthGBps: 100, MemBytes: 1 << 20}, nil)
}

func TestAllocAccounting(t *testing.T) {
	d := testDevice()
	a, err := d.Alloc(1 << 19)
	if err != nil {
		t.Fatal(err)
	}
	if d.InUse() != 1<<19 {
		t.Fatalf("InUse = %d", d.InUse())
	}
	b, err := d.Alloc(1 << 19)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Alloc(1); err == nil {
		t.Fatal("expected out-of-memory")
	} else {
		var oom ErrOutOfMemory
		if !errors.As(err, &oom) {
			t.Fatalf("error type = %T", err)
		}
		if oom.Capacity != 1<<20 || oom.Requested != 1 {
			t.Errorf("oom fields = %+v", oom)
		}
	}
	a.Free()
	a.Free() // double free is a no-op
	b.Free()
	if d.InUse() != 0 {
		t.Fatalf("InUse after frees = %d", d.InUse())
	}
	if d.MemTracker().Peak() != 1<<20 {
		t.Errorf("peak = %d, want %d", d.MemTracker().Peak(), 1<<20)
	}
}

func TestAllocNegative(t *testing.T) {
	d := testDevice()
	if _, err := d.Alloc(-5); err == nil {
		t.Error("expected error for negative size")
	}
}

func TestMustAllocPanics(t *testing.T) {
	d := testDevice()
	defer func() {
		if recover() == nil {
			t.Error("MustAlloc should panic on OOM")
		}
	}()
	d.MustAlloc(d.Capacity() + 1)
}

func randomPairs(rng *rand.Rand, n int, keyRange uint64) []kv.Pair {
	ps := make([]kv.Pair, n)
	for i := range ps {
		ps[i] = kv.Pair{
			Key: kv.Key{Hi: rng.Uint64() % keyRange, Lo: rng.Uint64()},
			Val: rng.Uint32(),
		}
	}
	return ps
}

func TestSortPairsMatchesSortSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 2, 10, 1000, 4096} {
		d := testDevice()
		ps := randomPairs(rng, n, 1<<40)
		want := append([]kv.Pair(nil), ps...)
		sort.Slice(want, func(i, j int) bool { return want[i].Key.Less(want[j].Key) })
		d.SortPairs(ps)
		if !kv.SortedPairs(ps) {
			t.Fatalf("n=%d: output not sorted", n)
		}
		for i := range ps {
			if ps[i].Key != want[i].Key {
				t.Fatalf("n=%d: key mismatch at %d", n, i)
			}
		}
	}
}

func TestSortPairsProperty(t *testing.T) {
	f := func(seed int64, n16 uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		ps := randomPairs(rng, int(n16)%500, 8) // heavy duplicates
		testDevice().SortPairs(ps)
		return kv.SortedPairs(ps)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSortPairsChargesCost(t *testing.T) {
	meter := costmodel.NewMeter()
	d := NewDevice(K40, meter)
	rng := rand.New(rand.NewSource(3))
	d.SortPairs(randomPairs(rng, 1000, 1<<63))
	c := meter.Snapshot()
	if c.DeviceMemBytes == 0 || c.DeviceOps == 0 {
		t.Errorf("sort should be metered, got %+v", c)
	}
}

func TestSortPairsSkipsUniformPasses(t *testing.T) {
	// Keys confined to the low byte: only one radix pass should execute.
	meter := costmodel.NewMeter()
	d := NewDevice(K40, meter)
	rng := rand.New(rand.NewSource(4))
	ps := make([]kv.Pair, 1024)
	for i := range ps {
		ps[i] = kv.Pair{Key: kv.Key{Lo: uint64(rng.Intn(256))}}
	}
	d.SortPairs(ps)
	if !kv.SortedPairs(ps) {
		t.Fatal("not sorted")
	}
	got := meter.Snapshot().DeviceMemBytes
	want := int64(1) * 2 * 1024 * kv.PairBytes
	if got != want {
		t.Errorf("metered %d bytes, want %d (one pass)", got, want)
	}
}

func TestMergePairs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := testDevice()
	a := randomPairs(rng, 300, 1<<20)
	b := randomPairs(rng, 211, 1<<20)
	d.SortPairs(a)
	d.SortPairs(b)
	out := d.MergePairs(a, b)
	if len(out) != 511 || !kv.SortedPairs(out) {
		t.Fatalf("merge output len=%d sorted=%v", len(out), kv.SortedPairs(out))
	}
	dst := make([]kv.Pair, 0, 511)
	out2 := d.MergePairsInto(dst, a, b)
	if len(out2) != len(out) {
		t.Fatal("MergePairsInto length mismatch")
	}
	for i := range out {
		if out[i] != out2[i] {
			t.Fatalf("MergePairsInto differs at %d", i)
		}
	}
}

func TestMergePairsEmptySides(t *testing.T) {
	d := testDevice()
	a := []kv.Pair{{Key: kv.Key{Lo: 1}}, {Key: kv.Key{Lo: 2}}}
	if got := d.MergePairs(a, nil); len(got) != 2 {
		t.Error("merge with empty right failed")
	}
	if got := d.MergePairs(nil, a); len(got) != 2 {
		t.Error("merge with empty left failed")
	}
	if got := d.MergePairs(nil, nil); len(got) != 0 {
		t.Error("merge of empties should be empty")
	}
}

func TestVecBounds(t *testing.T) {
	d := testDevice()
	targets := []kv.Pair{
		{Key: kv.Key{Lo: 2}}, {Key: kv.Key{Lo: 4}}, {Key: kv.Key{Lo: 4}}, {Key: kv.Key{Lo: 7}},
	}
	queries := []kv.Pair{
		{Key: kv.Key{Lo: 1}}, {Key: kv.Key{Lo: 4}}, {Key: kv.Key{Lo: 5}}, {Key: kv.Key{Lo: 9}},
	}
	lb := d.VecLowerBound(queries, targets, nil)
	ub := d.VecUpperBound(queries, targets, nil)
	diff := d.VecDifference(ub, lb, nil)
	wantLB := []int32{0, 1, 3, 4}
	wantUB := []int32{0, 3, 3, 4}
	wantC := []int32{0, 2, 0, 0}
	for i := range queries {
		if lb[i] != wantLB[i] || ub[i] != wantUB[i] || diff[i] != wantC[i] {
			t.Errorf("query %d: lb=%d ub=%d c=%d, want %d %d %d",
				i, lb[i], ub[i], diff[i], wantLB[i], wantUB[i], wantC[i])
		}
	}
}

func TestVecBoundsAgainstScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := testDevice()
	targets := randomPairs(rng, 400, 32)
	d.SortPairs(targets)
	queries := randomPairs(rng, 100, 32)
	lb := d.VecLowerBound(queries, targets, nil)
	ub := d.VecUpperBound(queries, targets, nil)
	for i, q := range queries {
		if int(lb[i]) != kv.LowerBound(targets, q.Key) {
			t.Fatalf("lower bound mismatch at %d", i)
		}
		if int(ub[i]) != kv.UpperBound(targets, q.Key) {
			t.Fatalf("upper bound mismatch at %d", i)
		}
	}
}

func TestExclusiveScan(t *testing.T) {
	d := testDevice()
	xs := []int64{3, 1, 4, 1, 5}
	out := make([]int64, len(xs))
	total := d.ExclusiveScan(xs, out)
	want := []int64{0, 3, 4, 8, 9}
	if total != 14 {
		t.Errorf("total = %d, want 14", total)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %d, want %d", i, out[i], want[i])
		}
	}
	if got := d.ExclusiveScan(nil, nil); got != 0 {
		t.Errorf("empty scan total = %d", got)
	}
}

func TestGatherScatter(t *testing.T) {
	d := testDevice()
	src := []string{"a", "b", "c", "d"}
	idx := []int32{3, 0, 2}
	out := make([]string, 3)
	Gather(d, src, idx, out)
	if out[0] != "d" || out[1] != "a" || out[2] != "c" {
		t.Errorf("Gather = %v", out)
	}
	dst := make([]string, 4)
	Scatter(d, []string{"x", "y", "z"}, idx, dst)
	if dst[3] != "x" || dst[0] != "y" || dst[2] != "z" {
		t.Errorf("Scatter = %v", dst)
	}
}

func TestLaunchBlocksCoversAll(t *testing.T) {
	d := testDevice()
	var seen atomic.Int64
	hits := make([]atomic.Bool, 100)
	d.LaunchBlocks(100, func(b int) {
		hits[b].Store(true)
		seen.Add(1)
	})
	if seen.Load() != 100 {
		t.Fatalf("kernel ran %d times, want 100", seen.Load())
	}
	for i := range hits {
		if !hits[i].Load() {
			t.Fatalf("block %d never ran", i)
		}
	}
	d.LaunchBlocks(0, func(int) { t.Error("should not run") })
}

func TestSpecCatalog(t *testing.T) {
	if got, ok := SpecByName("V100"); !ok || got.Cores != 5120 {
		t.Errorf("SpecByName(V100) = %+v, %v", got, ok)
	}
	if _, ok := SpecByName("RTX9090"); ok {
		t.Error("unknown card should not resolve")
	}
	// Bandwidth ordering drives Fig. 9: V100 > P100 > P40 > K40 > K20X.
	order := []Spec{V100, P100, P40, K40, K20X}
	for i := 1; i < len(order); i++ {
		if order[i].MemBps() >= order[i-1].MemBps() {
			t.Errorf("bandwidth order broken: %s >= %s", order[i].Name, order[i-1].Name)
		}
	}
	p := K40.CostProfile(100e6, 90e6)
	if p.DiskReadBps != 100e6 || p.DeviceMemBps <= 0 {
		t.Errorf("CostProfile = %+v", p)
	}
}
