package gpu

import (
	"sync"

	"repro/internal/kv"
)

// SortPairs sorts ps in place by (128-bit key, 32-bit value) using an LSD
// radix sort, the algorithm class the paper adopts from Merrill & Grimshaw
// for GPU radix sorting. The value participates as the lowest-order digits
// so that the order of equal-fingerprint runs is canonical — independent
// of how tuples were laid out on disk — which keeps single-node and
// distributed runs bit-identical. Passes whose digit column is constant
// are skipped, matching the early-exit optimization of production GPU
// sorts.
//
// The cost model charges the bytes each executed pass streams through
// device memory (one read plus one write of the whole buffer) plus one
// scalar op per element per pass.
func (d *Device) SortPairs(ps []kv.Pair) {
	d.SortPairsCost(ps)
}

// SortPairsCost is SortPairs that also returns the metered cost, for
// callers that place the kernel on a modeled timeline (the cost depends
// on how many radix passes actually executed, so it is only known after
// the kernel runs).
func (d *Device) SortPairsCost(ps []kv.Pair) (memBytes, ops int64) {
	if len(ps) <= 1 {
		return 0, 0
	}
	memBytes, ops = sortPairsKernel(ps)
	d.ChargeKernel(memBytes, ops)
	return memBytes, ops
}

// radixCols is the number of 8-bit digit columns in the 160-bit composite
// sort key (Hi ‖ Lo ‖ Val); column 0 is the least significant byte of Val.
const radixCols = 20

// sortScratchPool recycles the double-buffer scratch across kernel calls.
// The Device is shared by concurrent worker goroutines, so the pool is a
// sync.Pool; a pooled buffer too small for the request is simply dropped.
var sortScratchPool sync.Pool

func getSortScratch(n int) *[]kv.Pair {
	if v := sortScratchPool.Get(); v != nil {
		s := v.(*[]kv.Pair)
		if cap(*s) >= n {
			*s = (*s)[:n]
			return s
		}
	}
	s := make([]kv.Pair, n)
	return &s
}

// sortPairsKernel executes the radix sort and returns the device-memory
// bytes and scalar ops it cost, so both the direct Device entry point and
// the Stream entry point charge the meter and the modeled timeline from
// the same actual pass count (passes vary with the skip-uniform-digit
// optimization, so the cost is only known after execution).
//
// All 20 digit histograms are built in one sweep over the input before
// any scatter pass: histograms are permutation-invariant, so counting up
// front over the original order yields byte-for-byte the same counts —
// and the same uniform-column skips, and therefore the same executed pass
// count and modeled charge — as recounting the current permutation before
// each pass, while touching the array once instead of twenty times. The
// scatter itself dispatches on which word holds the column's byte rather
// than calling a per-element extractor closure.
func sortPairsKernel(ps []kv.Pair) (memBytes, ops int64) {
	n := len(ps)
	scratchPtr := getSortScratch(n)
	scratch := *scratchPtr

	var counts [radixCols][256]int
	for i := range ps {
		p := &ps[i]
		v, lo, hi := p.Val, p.Key.Lo, p.Key.Hi
		counts[0][byte(v)]++
		counts[1][byte(v>>8)]++
		counts[2][byte(v>>16)]++
		counts[3][byte(v>>24)]++
		counts[4][byte(lo)]++
		counts[5][byte(lo>>8)]++
		counts[6][byte(lo>>16)]++
		counts[7][byte(lo>>24)]++
		counts[8][byte(lo>>32)]++
		counts[9][byte(lo>>40)]++
		counts[10][byte(lo>>48)]++
		counts[11][byte(lo>>56)]++
		counts[12][byte(hi)]++
		counts[13][byte(hi>>8)]++
		counts[14][byte(hi>>16)]++
		counts[15][byte(hi>>24)]++
		counts[16][byte(hi>>32)]++
		counts[17][byte(hi>>40)]++
		counts[18][byte(hi>>48)]++
		counts[19][byte(hi>>56)]++
	}

	src, dst := ps, scratch
	passes := 0
	for col := 0; col < radixCols; col++ {
		c := &counts[col]
		// A column whose first nonzero bucket holds every element is
		// uniform; the pass is skipped (early-exit optimization).
		uniform := false
		for _, cnt := range c {
			if cnt != 0 {
				uniform = cnt == n
				break
			}
		}
		if uniform {
			continue
		}
		passes++
		// Exclusive prefix sum over digit counts (the scatter offsets).
		sum := 0
		for i := range c {
			cnt := c[i]
			c[i] = sum
			sum += cnt
		}
		switch {
		case col < 4:
			shift := uint(col * 8)
			for i := range src {
				p := src[i]
				dg := byte(p.Val >> shift)
				dst[c[dg]] = p
				c[dg]++
			}
		case col < 12:
			shift := uint((col - 4) * 8)
			for i := range src {
				p := src[i]
				dg := byte(p.Key.Lo >> shift)
				dst[c[dg]] = p
				c[dg]++
			}
		default:
			shift := uint((col - 12) * 8)
			for i := range src {
				p := src[i]
				dg := byte(p.Key.Hi >> shift)
				dst[c[dg]] = p
				c[dg]++
			}
		}
		src, dst = dst, src
	}
	if &src[0] != &ps[0] {
		copy(ps, src)
	}
	sortScratchPool.Put(scratchPtr)
	return int64(passes) * 2 * int64(n) * kv.PairBytes, int64(passes) * int64(n)
}

// MergePairs merges two key-sorted slices into a single sorted output,
// the GPU_MERGE step of Algorithm 1. The returned slice is freshly
// allocated with capacity len(a)+len(b).
func (d *Device) MergePairs(a, b []kv.Pair) []kv.Pair {
	out := make([]kv.Pair, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if b[j].Less(a[i]) {
			out = append(out, b[j])
			j++
		} else {
			out = append(out, a[i])
			i++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	n := int64(len(out))
	d.ChargeKernel(2*n*kv.PairBytes, n)
	return out
}

// MergePairsInto merges a and b into dst (which must have capacity for
// both) and returns the filled slice, avoiding allocation in hot loops.
func (d *Device) MergePairsInto(dst, a, b []kv.Pair) []kv.Pair {
	out, mem, ops := mergePairsIntoKernel(dst, a, b)
	d.ChargeKernel(mem, ops)
	return out
}

func mergePairsIntoKernel(dst, a, b []kv.Pair) ([]kv.Pair, int64, int64) {
	dst = dst[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if b[j].Less(a[i]) {
			dst = append(dst, b[j])
			j++
		} else {
			dst = append(dst, a[i])
			i++
		}
	}
	dst = append(dst, a[i:]...)
	dst = append(dst, b[j:]...)
	n := int64(len(dst))
	return dst, 2 * n * kv.PairBytes, n
}
