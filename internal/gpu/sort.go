package gpu

import "repro/internal/kv"

// SortPairs sorts ps in place by (128-bit key, 32-bit value) using an LSD
// radix sort, the algorithm class the paper adopts from Merrill & Grimshaw
// for GPU radix sorting. The value participates as the lowest-order digits
// so that the order of equal-fingerprint runs is canonical — independent
// of how tuples were laid out on disk — which keeps single-node and
// distributed runs bit-identical. Passes whose digit column is constant
// are skipped, matching the early-exit optimization of production GPU
// sorts.
//
// The cost model charges the bytes each executed pass streams through
// device memory (one read plus one write of the whole buffer) plus one
// scalar op per element per pass.
func (d *Device) SortPairs(ps []kv.Pair) {
	d.SortPairsCost(ps)
}

// SortPairsCost is SortPairs that also returns the metered cost, for
// callers that place the kernel on a modeled timeline (the cost depends
// on how many radix passes actually executed, so it is only known after
// the kernel runs).
func (d *Device) SortPairsCost(ps []kv.Pair) (memBytes, ops int64) {
	if len(ps) <= 1 {
		return 0, 0
	}
	memBytes, ops = sortPairsKernel(ps)
	d.ChargeKernel(memBytes, ops)
	return memBytes, ops
}

// sortPairsKernel executes the radix sort and returns the device-memory
// bytes and scalar ops it cost, so both the direct Device entry point and
// the Stream entry point charge the meter and the modeled timeline from
// the same actual pass count (passes vary with the skip-uniform-digit
// optimization, so the cost is only known after execution).
func sortPairsKernel(ps []kv.Pair) (memBytes, ops int64) {
	n := len(ps)
	scratch := make([]kv.Pair, n)
	src, dst := ps, scratch
	passes := 0
	var counts [256]int
	for shift := 0; shift < 160; shift += 8 {
		digit := digitFunc(shift)
		for i := range counts {
			counts[i] = 0
		}
		first := digit(src[0])
		uniform := true
		for _, p := range src {
			dg := digit(p)
			counts[dg]++
			if dg != first {
				uniform = false
			}
		}
		if uniform {
			continue
		}
		passes++
		// Exclusive prefix sum over digit counts (the scatter offsets).
		sum := 0
		for i := range counts {
			c := counts[i]
			counts[i] = sum
			sum += c
		}
		for _, p := range src {
			dg := digit(p)
			dst[counts[dg]] = p
			counts[dg]++
		}
		src, dst = dst, src
	}
	if &src[0] != &ps[0] {
		copy(ps, src)
	}
	return int64(passes) * 2 * int64(n) * kv.PairBytes, int64(passes) * int64(n)
}

// digitFunc returns an extractor for the 8-bit digit at the given shift
// within the 160-bit composite (Hi ‖ Lo ‖ Val); shift 0 is the least
// significant byte of Val.
func digitFunc(shift int) func(kv.Pair) byte {
	switch {
	case shift < 32:
		s := uint(shift)
		return func(p kv.Pair) byte { return byte(p.Val >> s) }
	case shift < 96:
		s := uint(shift - 32)
		return func(p kv.Pair) byte { return byte(p.Key.Lo >> s) }
	default:
		s := uint(shift - 96)
		return func(p kv.Pair) byte { return byte(p.Key.Hi >> s) }
	}
}

// MergePairs merges two key-sorted slices into a single sorted output,
// the GPU_MERGE step of Algorithm 1. The returned slice is freshly
// allocated with capacity len(a)+len(b).
func (d *Device) MergePairs(a, b []kv.Pair) []kv.Pair {
	out := make([]kv.Pair, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if b[j].Less(a[i]) {
			out = append(out, b[j])
			j++
		} else {
			out = append(out, a[i])
			i++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	n := int64(len(out))
	d.ChargeKernel(2*n*kv.PairBytes, n)
	return out
}

// MergePairsInto merges a and b into dst (which must have capacity for
// both) and returns the filled slice, avoiding allocation in hot loops.
func (d *Device) MergePairsInto(dst, a, b []kv.Pair) []kv.Pair {
	out, mem, ops := mergePairsIntoKernel(dst, a, b)
	d.ChargeKernel(mem, ops)
	return out
}

func mergePairsIntoKernel(dst, a, b []kv.Pair) ([]kv.Pair, int64, int64) {
	dst = dst[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if b[j].Less(a[i]) {
			dst = append(dst, b[j])
			j++
		} else {
			dst = append(dst, a[i])
			i++
		}
	}
	dst = append(dst, a[i:]...)
	dst = append(dst, b[j:]...)
	n := int64(len(dst))
	return dst, 2 * n * kv.PairBytes, n
}
