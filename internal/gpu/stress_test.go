package gpu

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// tinyDevice returns a device with very little memory so that concurrent
// allocators contend hard on the capacity bound.
func tinyDevice(memBytes int64) *Device {
	return NewDevice(Spec{Name: "tiny", Cores: 64, ClockMHz: 500,
		MemBandwidthGBps: 10, MemBytes: memBytes}, nil)
}

// TestDeviceConcurrentAllocStress hammers Alloc/AllocWait/Free from many
// goroutines against a tiny capacity and checks the invariants the
// parallel pipeline relies on: InUse never exceeds capacity or goes
// negative, over-capacity requests fail with ErrOutOfMemory (never a
// panic), and after every goroutine finishes InUse returns to zero.
func TestDeviceConcurrentAllocStress(t *testing.T) {
	const (
		capacity   = 1 << 12
		goroutines = 16
		iters      = 200
	)
	d := tinyDevice(capacity)
	var oomSeen atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				n := int64(rng.Intn(capacity/2) + 1)
				var a *Allocation
				var err error
				if i%2 == 0 {
					a, err = d.AllocWait(context.Background(), n)
				} else {
					a, err = d.Alloc(n)
				}
				if err != nil {
					var oom ErrOutOfMemory
					if !errors.As(err, &oom) {
						t.Errorf("unexpected error type %T: %v", err, err)
						return
					}
					oomSeen.Add(1)
					continue
				}
				if use := d.InUse(); use < n || use > capacity {
					t.Errorf("InUse = %d with %d allocated (capacity %d)", use, n, capacity)
				}
				a.Free()
				a.Free() // double free must stay a no-op under concurrency
			}
		}(int64(g) + 1)
	}
	wg.Wait()
	if d.InUse() != 0 {
		t.Fatalf("InUse = %d after all goroutines freed, want 0", d.InUse())
	}
	if d.MemTracker().Peak() > capacity {
		t.Errorf("peak %d exceeds capacity %d", d.MemTracker().Peak(), capacity)
	}
	// The non-blocking half of the load races 16 goroutines for half the
	// capacity each, so some Alloc calls must have hit the capacity bound.
	if oomSeen.Load() == 0 {
		t.Log("no ErrOutOfMemory observed; contention too low to exercise the bound")
	}
}

// TestAllocWaitBlocksUntilFree proves AllocWait provides backpressure: a
// request that cannot fit waits for an existing holder to free instead of
// failing.
func TestAllocWaitBlocksUntilFree(t *testing.T) {
	d := tinyDevice(1 << 10)
	hold, err := d.AllocWait(context.Background(), 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	acquired := make(chan *Allocation)
	go func() {
		a, err := d.AllocWait(context.Background(), 512)
		if err != nil {
			t.Error(err)
		}
		acquired <- a
	}()
	select {
	case <-acquired:
		t.Fatal("AllocWait returned while the device was full")
	default:
	}
	hold.Free()
	a := <-acquired
	if d.InUse() != 512 {
		t.Errorf("InUse = %d, want 512", d.InUse())
	}
	a.Free()
	if d.InUse() != 0 {
		t.Errorf("InUse = %d after free, want 0", d.InUse())
	}
}

// TestAllocWaitImpossibleRequest checks that a request larger than the
// whole device fails immediately with ErrOutOfMemory rather than blocking
// forever.
func TestAllocWaitImpossibleRequest(t *testing.T) {
	d := tinyDevice(1 << 10)
	_, err := d.AllocWait(context.Background(), 1<<10+1)
	var oom ErrOutOfMemory
	if !errors.As(err, &oom) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	if oom.Requested != 1<<10+1 || oom.Capacity != 1<<10 {
		t.Errorf("oom fields = %+v", oom)
	}
	if _, err := d.AllocWait(context.Background(), -1); err == nil {
		t.Error("negative AllocWait should fail")
	}
}

// TestAllocWaitCancelUnblocksWaiter proves a parked waiter leaves the
// allocator promptly when its context is cancelled, without disturbing the
// holder's accounting — the property that lets cancelled pipelines drain
// their worker pools instead of leaking goroutines.
func TestAllocWaitCancelUnblocksWaiter(t *testing.T) {
	d := tinyDevice(1 << 10)
	hold, err := d.AllocWait(context.Background(), 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error)
	go func() {
		_, err := d.AllocWait(ctx, 512)
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("AllocWait returned early: %v", err)
	default:
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d.InUse() != 1<<10 {
		t.Errorf("InUse = %d, cancellation must not change accounting", d.InUse())
	}
	hold.Free()
	if d.InUse() != 0 {
		t.Errorf("InUse = %d after free, want 0", d.InUse())
	}
}

// TestAllocWaitCancelledBeforeCall returns immediately with ctx.Err() even
// when capacity is available.
func TestAllocWaitCancelledBeforeCall(t *testing.T) {
	d := tinyDevice(1 << 10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := d.AllocWait(ctx, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d.InUse() != 0 {
		t.Errorf("InUse = %d, want 0", d.InUse())
	}
}

// TestAllocWaitManyWaitersCancelled parks many impossible-to-satisfy
// waiters behind a holder and cancels them all; every one must return with
// the context error.
func TestAllocWaitManyWaitersCancelled(t *testing.T) {
	d := tinyDevice(1 << 8)
	hold, err := d.AllocWait(context.Background(), 1<<8)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errs := make(chan error, 32)
	for g := 0; g < 32; g++ {
		go func() {
			_, err := d.AllocWait(ctx, 1<<8)
			errs <- err
		}()
	}
	cancel()
	for g := 0; g < 32; g++ {
		if err := <-errs; !errors.Is(err, context.Canceled) {
			t.Fatalf("waiter %d: err = %v, want context.Canceled", g, err)
		}
	}
	hold.Free()
	if d.InUse() != 0 {
		t.Fatalf("InUse = %d after drain, want 0", d.InUse())
	}
}

// TestAllocWaitManyWaiters saturates the device with far more blocking
// waiters than capacity and verifies they all eventually complete without
// deadlock or accounting drift.
func TestAllocWaitManyWaiters(t *testing.T) {
	const capacity = 1 << 8
	d := tinyDevice(capacity)
	var wg sync.WaitGroup
	for g := 0; g < 64; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				a, err := d.AllocWait(context.Background(), capacity) // each waiter needs the whole device
				if err != nil {
					t.Error(err)
					return
				}
				a.Free()
			}
		}()
	}
	wg.Wait()
	if d.InUse() != 0 {
		t.Fatalf("InUse = %d after drain, want 0", d.InUse())
	}
}
