package gpu

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/costmodel"
	"repro/internal/stats"
)

// Hooks observes device events for the observability layer: grid
// launches, custom-kernel charges, and allocator backpressure. All
// methods may be called concurrently from pipeline workers and must not
// block. A nil Hooks disables instrumentation at zero cost.
type Hooks interface {
	// KernelLaunch fires after LaunchBlocks finishes a grid of blocks
	// thread blocks that started at start and ran for wall.
	KernelLaunch(blocks int, start time.Time, wall time.Duration)
	// KernelCharge fires on every ChargeKernel call. It is the hottest
	// hook (one call per device primitive); implementations should only
	// bump pre-resolved atomic counters.
	KernelCharge(memBytes, ops int64)
	// AllocWaited fires when AllocWait had to block for capacity: the
	// request was parked at start and waited wait before being granted.
	// Immediate grants do not fire, so every event is real device-queue
	// backpressure.
	AllocWaited(bytes int64, start time.Time, wait time.Duration)
}

// ErrOutOfMemory is returned when an allocation would exceed the device's
// memory capacity. Pipeline stages size their batches so this never fires
// in normal operation; tests exercise it deliberately.
type ErrOutOfMemory struct {
	Requested int64
	InUse     int64
	Capacity  int64
}

func (e ErrOutOfMemory) Error() string {
	return fmt.Sprintf("gpu: out of device memory: requested %d with %d in use of %d",
		e.Requested, e.InUse, e.Capacity)
}

// Device is a simulated GPU. All pipeline batches must fit in its bounded
// memory; all primitive calls execute on the host CPU but meter the bytes
// and operations the modeled card would spend.
//
// The device is safe for concurrent use: multiple pipeline workers may
// hold batch allocations simultaneously, and the capacity bound is what
// gates their concurrency (AllocWait blocks until enough memory is free,
// exactly as a CUDA allocator would backpressure concurrent streams).
type Device struct {
	spec  Spec
	meter *costmodel.Meter
	mem   stats.MemTracker

	mu      sync.Mutex
	freed   *sync.Cond // signaled whenever memory is released
	inUse   int64
	waiters int // AllocWait callers currently parked for capacity
	workers int
	hooks   Hooks
}

// NewDevice creates a device of the given spec. If meter is nil a private
// meter is created.
func NewDevice(spec Spec, meter *costmodel.Meter) *Device {
	if meter == nil {
		meter = costmodel.NewMeter()
	}
	return &Device{spec: spec, meter: meter, workers: runtime.GOMAXPROCS(0)}
}

// SetHooks installs the event hooks. It must be called before the device
// is shared between goroutines (the pipeline installs hooks at
// construction time); h may be nil to disable instrumentation.
func (d *Device) SetHooks(h Hooks) { d.hooks = h }

// Spec returns the modeled card.
func (d *Device) Spec() Spec { return d.spec }

// Meter returns the cost meter this device feeds.
func (d *Device) Meter() *costmodel.Meter { return d.meter }

// MemTracker exposes the device-memory tracker for peak accounting.
func (d *Device) MemTracker() *stats.MemTracker { return &d.mem }

// Allocation is a claim on device memory. Free it when the buffer's
// lifetime ends; allocations are bookkeeping only (the actual data lives
// in ordinary Go slices owned by the caller). The device pointer is
// swapped atomically on Free, so releasing is idempotent even when
// goroutines race on the same allocation.
type Allocation struct {
	dev   atomic.Pointer[Device]
	bytes int64
}

func newAllocation(d *Device, n int64) *Allocation {
	a := &Allocation{bytes: n}
	a.dev.Store(d)
	return a
}

// Alloc claims n bytes of device memory, failing with ErrOutOfMemory when
// the claim would exceed capacity.
func (d *Device) Alloc(n int64) (*Allocation, error) {
	if n < 0 {
		return nil, fmt.Errorf("gpu: negative allocation %d", n)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.inUse+n > d.spec.MemBytes {
		return nil, ErrOutOfMemory{Requested: n, InUse: d.inUse, Capacity: d.spec.MemBytes}
	}
	d.inUse += n
	d.mem.Add(n)
	return newAllocation(d, n), nil
}

// AllocWait claims n bytes of device memory, blocking until concurrent
// holders free enough capacity or ctx is cancelled. It returns
// ErrOutOfMemory only when the request can never be satisfied (n exceeds
// the device capacity outright), and ctx.Err() when cancelled — waiters
// never stay parked on the allocator after cancellation, which is what
// lets pipeline worker pools drain cleanly. Callers must not hold another
// allocation while waiting, or concurrent waiters can deadlock; every
// pipeline stage allocates one batch at a time, which guarantees progress.
func (d *Device) AllocWait(ctx context.Context, n int64) (*Allocation, error) {
	if n < 0 {
		return nil, fmt.Errorf("gpu: negative allocation %d", n)
	}
	if n > d.spec.MemBytes {
		d.mu.Lock()
		inUse := d.inUse
		d.mu.Unlock()
		return nil, ErrOutOfMemory{Requested: n, InUse: inUse, Capacity: d.spec.MemBytes}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	d.mu.Lock()
	if d.freed == nil {
		d.freed = sync.NewCond(&d.mu)
	}
	// Wake every waiter when ctx fires so each can observe the
	// cancellation; sync.Cond cannot select on a channel directly.
	stop := context.AfterFunc(ctx, func() {
		d.mu.Lock()
		d.freed.Broadcast()
		d.mu.Unlock()
	})
	defer stop()
	var waitStart time.Time
	for d.inUse+n > d.spec.MemBytes {
		if waitStart.IsZero() {
			waitStart = time.Now()
			d.waiters++
		}
		if err := ctx.Err(); err != nil {
			d.waiters--
			d.mu.Unlock()
			return nil, err
		}
		d.freed.Wait()
	}
	if !waitStart.IsZero() {
		d.waiters--
	}
	d.inUse += n
	// Record the claim in the peak tracker before dropping the lock, the
	// same ordering Alloc and Free use: a grant that published inUse but
	// deferred mem.Add could interleave with a concurrent Free's
	// mem.Release and record a stale peak.
	d.mem.Add(n)
	d.mu.Unlock()
	if h := d.hooks; h != nil && !waitStart.IsZero() {
		h.AllocWaited(n, waitStart, time.Since(waitStart))
	}
	return newAllocation(d, n), nil
}

// MustAlloc is Alloc that panics on failure; for callers that have already
// sized their batches against Capacity.
func (d *Device) MustAlloc(n int64) *Allocation {
	a, err := d.Alloc(n)
	if err != nil {
		panic(err)
	}
	return a
}

// Free releases the allocation and wakes any AllocWait callers. Freeing
// is idempotent under concurrency: the device pointer is claimed with an
// atomic swap, so exactly one caller releases the bytes no matter how
// many goroutines race Free on the same allocation.
func (a *Allocation) Free() {
	if a == nil {
		return
	}
	dev := a.dev.Swap(nil)
	if dev == nil {
		return
	}
	dev.mu.Lock()
	dev.inUse -= a.bytes
	dev.mem.Release(a.bytes)
	if dev.freed != nil {
		dev.freed.Broadcast()
	}
	dev.mu.Unlock()
}

// Bytes returns the allocation size.
func (a *Allocation) Bytes() int64 { return a.bytes }

// InUse returns the currently allocated device memory.
func (d *Device) InUse() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.inUse
}

// Available returns the device memory not currently claimed. A scheduler
// leasing job-sized claims off a shared device (internal/serve) reads it
// for admission metrics; it is advisory — AllocWait is the authoritative,
// blocking admission path.
func (d *Device) Available() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.spec.MemBytes - d.inUse
}

// Waiters returns how many AllocWait callers are currently parked waiting
// for capacity — the device's admission backlog.
func (d *Device) Waiters() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.waiters
}

// Capacity returns the device memory capacity in bytes.
func (d *Device) Capacity() int64 { return d.spec.MemBytes }

// CopyToDevice meters a host-to-device transfer of n bytes.
func (d *Device) CopyToDevice(n int64) { d.meter.AddPCIe(n) }

// CopyFromDevice meters a device-to-host transfer of n bytes.
func (d *Device) CopyFromDevice(n int64) { d.meter.AddPCIe(n) }

// ChargeKernel meters a custom kernel that moves memBytes through device
// memory and performs ops scalar operations; used by kernels implemented
// outside this package (e.g. the fingerprint scan).
func (d *Device) ChargeKernel(memBytes, ops int64) {
	d.meter.AddDeviceMem(memBytes)
	d.meter.AddDeviceOps(ops)
	if h := d.hooks; h != nil {
		h.KernelCharge(memBytes, ops)
	}
}

// LaunchBlocks emulates a grid launch of numBlocks thread blocks, running
// kernel(block) for each. Blocks are distributed over host worker
// goroutines; within a block the kernel itself is responsible for
// respecting step-barrier (Hillis-Steele) semantics, which the fingerprint
// kernels do by double-buffering each scan step.
func (d *Device) LaunchBlocks(numBlocks int, kernel func(block int)) {
	if numBlocks <= 0 {
		return
	}
	if h := d.hooks; h != nil {
		start := time.Now()
		defer func() { h.KernelLaunch(numBlocks, start, time.Since(start)) }()
	}
	workers := d.workers
	if workers > numBlocks {
		workers = numBlocks
	}
	if workers <= 1 {
		for b := 0; b < numBlocks; b++ {
			kernel(b)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range next {
				kernel(b)
			}
		}()
	}
	for b := 0; b < numBlocks; b++ {
		next <- b
	}
	close(next)
	wg.Wait()
}
