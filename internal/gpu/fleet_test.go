package gpu

import (
	"testing"
)

func TestNewFleetIndependentAllocators(t *testing.T) {
	f, err := NewFleet([]Spec{
		{Name: "small", MemBytes: 100},
		{Name: "big", MemBytes: 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 2 {
		t.Fatalf("Size() = %d, want 2", f.Size())
	}
	if got := f.TotalCapacity(); got != 1100 {
		t.Errorf("TotalCapacity() = %d, want 1100", got)
	}
	if got := f.MaxCapacity(); got != 1000 {
		t.Errorf("MaxCapacity() = %d, want 1000", got)
	}
	if got := f.FitCount(500); got != 1 {
		t.Errorf("FitCount(500) = %d, want 1", got)
	}
	if got := f.FitCount(50); got != 2 {
		t.Errorf("FitCount(50) = %d, want 2", got)
	}

	// Claims on one device never consume another's capacity, and each
	// device meters on its own meter.
	a, err := f.Device(0).Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Device(1).Available(); got != 1000 {
		t.Errorf("device 1 available = %d after device-0 alloc, want 1000", got)
	}
	if _, err := f.Device(0).Alloc(1); err == nil {
		t.Error("device 0 over-capacity alloc succeeded")
	}
	f.Device(0).CopyToDevice(64)
	if got := f.Device(1).Meter().Snapshot().PCIeBytes; got != 0 {
		t.Errorf("device 1 metered %d PCIe bytes from device 0's copy", got)
	}
	if got := f.Device(0).Meter().Snapshot().PCIeBytes; got != 64 {
		t.Errorf("device 0 metered %d PCIe bytes, want 64", got)
	}
	a.Free()

	if _, err := NewFleet(nil); err == nil {
		t.Error("empty fleet constructed")
	}
	if _, err := NewFleet([]Spec{{Name: "nomem"}}); err == nil {
		t.Error("zero-capacity fleet device constructed")
	}
}

func TestParseSpecs(t *testing.T) {
	specs, err := ParseSpecs("K40, 2xK20X ,P100")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"K40", "K20X", "K20X", "P100"}
	if len(specs) != len(want) {
		t.Fatalf("parsed %d specs, want %d", len(specs), len(want))
	}
	for i, w := range want {
		if specs[i].Name != w {
			t.Errorf("spec %d = %s, want %s", i, specs[i].Name, w)
		}
	}
	for _, bad := range []string{"", "NoSuchCard", "0xK40", "K40,,Nope"} {
		if _, err := ParseSpecs(bad); err == nil {
			t.Errorf("ParseSpecs(%q) succeeded, want error", bad)
		}
	}
}
