package gpu

import (
	"sync"
	"time"

	"repro/internal/costmodel"
	"repro/internal/kv"
)

// StreamHooks extends Hooks for implementations that also want per-stream
// operation events (the observability layer draws them as overlapping
// stream tracks in the trace). Detected by type assertion, so existing
// Hooks implementations keep working unchanged. StreamOp fires only for
// ops executed asynchronously — inline ops are already covered by the
// enclosing span.
type StreamHooks interface {
	StreamOp(stream, op string, start time.Time, wall time.Duration)
}

type streamOp struct {
	name    string
	fn      func() error
	barrier chan struct{} // non-nil: a Sync marker, always executed
}

// Stream is an ordered queue of device and host operations, the simulated
// counterpart of a CUDA stream: ops on one stream execute in enqueue
// order, ops on different streams may run (and are modeled) concurrently,
// and Sync blocks until everything enqueued so far has completed.
//
// A stream carries an optional modeled timeline line: every op charges
// its tier traffic both to the device meter (counters, identical to the
// serial path) and to the line (modeled placement, where overlap across
// streams is what shrinks the makespan). A nil line disables modeling and
// an inline (async=false) stream executes ops immediately on the caller,
// so Streams=off reduces to exactly today's serial path.
//
// One goroutine owns a stream's enqueue side (the pipeline's per-unit
// orchestrator); Sync/Close create the happens-before edges that make the
// executor's writes visible to it, mirroring cudaStreamSynchronize.
type Stream struct {
	dev   *Device
	line  *costmodel.Line
	name  string
	async bool

	mu      sync.Mutex
	started bool
	closed  bool
	err     error
	ops     chan streamOp
	done    chan struct{}
}

// NewStream opens a command stream. line may be nil (no modeled timeline);
// async selects a real background executor goroutine versus inline
// execution on the caller. The executor starts lazily on first enqueue.
func (d *Device) NewStream(name string, line *costmodel.Line, async bool) *Stream {
	s := &Stream{dev: d, line: line, name: name, async: async}
	if async {
		s.ops = make(chan streamOp, 64)
		s.done = make(chan struct{})
	}
	return s
}

// Name returns the stream's label.
func (s *Stream) Name() string { return s.name }

// Device returns the stream's device.
func (s *Stream) Device() *Device { return s.dev }

// Line returns the stream's modeled timeline line (nil when unmodeled).
func (s *Stream) Line() *costmodel.Line { return s.line }

// Async reports whether the stream runs a background executor (versus
// executing ops inline on the caller).
func (s *Stream) Async() bool { return s.async }

func (s *Stream) ensureStarted() {
	s.mu.Lock()
	if !s.started {
		s.started = true
		go s.run()
	}
	s.mu.Unlock()
}

func (s *Stream) run() {
	defer close(s.done)
	for op := range s.ops {
		if op.barrier != nil {
			close(op.barrier)
			continue
		}
		if s.failed() {
			continue // first error latches; later ops are skipped
		}
		start := time.Now()
		err := op.fn()
		if h, ok := s.dev.hooks.(StreamHooks); ok {
			h.StreamOp(s.name, op.name, start, time.Since(start))
		}
		if err != nil {
			s.latch(err)
		}
	}
}

func (s *Stream) failed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err != nil
}

func (s *Stream) latch(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
}

// Enqueue appends an operation to the stream. On an async stream it
// returns immediately and fn runs on the executor after every previously
// enqueued op; on an inline stream fn runs before Enqueue returns. After
// the stream's first error, subsequent ops are skipped — Sync reports the
// latched error. Enqueue after Close panics, as with a destroyed CUDA
// stream.
func (s *Stream) Enqueue(name string, fn func() error) {
	if !s.async {
		if s.failed() {
			return
		}
		if err := fn(); err != nil {
			s.latch(err)
		}
		return
	}
	s.ensureStarted()
	s.ops <- streamOp{name: name, fn: fn}
}

// Sync blocks until every op enqueued so far has executed and returns the
// stream's first error, like cudaStreamSynchronize.
func (s *Stream) Sync() error {
	if s.async {
		s.mu.Lock()
		started := s.started && !s.closed
		s.mu.Unlock()
		if started {
			ack := make(chan struct{})
			s.ops <- streamOp{barrier: ack}
			<-ack
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close drains the stream, stops its executor, and returns the first
// error. A stream must be closed before its buffers are reused elsewhere;
// Close is idempotent.
func (s *Stream) Close() error {
	err := s.Sync()
	if !s.async {
		return err
	}
	s.mu.Lock()
	started, closed := s.started, s.closed
	if started && !closed {
		s.closed = true
		close(s.ops)
	}
	s.mu.Unlock()
	if started && !closed {
		<-s.done
	}
	return err
}

// Charge records modeled tier traffic at the stream's current position —
// for ops (disk reads, file writes) whose size is only known inside the
// enqueued closure. Nil-safe on an unmodeled stream.
func (s *Stream) Charge(t costmodel.Tier, amount int64) {
	s.line.Charge(t, amount)
}

// WaitModeled enqueues a modeled-time dependency: the stream's next op
// starts no earlier than modeled time t (typically another stream's
// cursor, the stream-event wait of CUDA). It costs nothing at execution
// time.
func (s *Stream) WaitModeled(t float64) {
	if s.line == nil {
		return
	}
	s.Enqueue("wait", func() error {
		s.line.Wait(t)
		return nil
	})
}

// ModeledCursor returns the stream's modeled position. For an async
// stream call it after Sync, so all enqueued charges have landed.
func (s *Stream) ModeledCursor() float64 { return s.line.Cursor() }

// CopyToDeviceAsync enqueues a host-to-device transfer of n bytes: the
// meter records the same PCIe bytes as Device.CopyToDevice, and the
// modeled timeline places them in stream order.
func (s *Stream) CopyToDeviceAsync(n int64) {
	s.Enqueue("h2d", func() error {
		s.dev.CopyToDevice(n)
		s.line.Charge(costmodel.TierPCIe, n)
		return nil
	})
}

// CopyFromDeviceAsync enqueues a device-to-host transfer of n bytes.
func (s *Stream) CopyFromDeviceAsync(n int64) {
	s.Enqueue("d2h", func() error {
		s.dev.CopyFromDevice(n)
		s.line.Charge(costmodel.TierPCIe, n)
		return nil
	})
}

// chargeKernel mirrors Device.ChargeKernel onto the modeled line.
func (s *Stream) chargeKernel(memBytes, ops int64) {
	s.dev.ChargeKernel(memBytes, ops)
	s.line.Charge(costmodel.TierDeviceMem, memBytes)
	s.line.Charge(costmodel.TierDeviceOps, ops)
}

// SortPairs runs the radix-sort kernel with metering identical to
// Device.SortPairs plus modeled placement on this stream. Value-producing
// kernels execute synchronously (the caller needs the result), so the
// stream is drained first.
func (s *Stream) SortPairs(ps []kv.Pair) {
	s.Sync()
	if len(ps) <= 1 {
		return
	}
	s.chargeKernel(sortPairsKernel(ps))
}

// MergePairsInto is Device.MergePairsInto on this stream.
func (s *Stream) MergePairsInto(dst, a, b []kv.Pair) []kv.Pair {
	s.Sync()
	out, mem, ops := mergePairsIntoKernel(dst, a, b)
	s.chargeKernel(mem, ops)
	return out
}

// VecLowerBound is Device.VecLowerBound on this stream.
func (s *Stream) VecLowerBound(queries, targets []kv.Pair, out []int32) []int32 {
	s.Sync()
	out = vecLowerBoundKernel(queries, targets, out)
	if len(queries) > 0 {
		s.chargeKernel(searchCost(len(queries), len(targets)))
	}
	return out
}

// VecUpperBound is Device.VecUpperBound on this stream.
func (s *Stream) VecUpperBound(queries, targets []kv.Pair, out []int32) []int32 {
	s.Sync()
	out = vecUpperBoundKernel(queries, targets, out)
	if len(queries) > 0 {
		s.chargeKernel(searchCost(len(queries), len(targets)))
	}
	return out
}

// VecDifference is Device.VecDifference on this stream.
func (s *Stream) VecDifference(u, l []int32, out []int32) []int32 {
	s.Sync()
	out = vecDifferenceKernel(u, l, out)
	s.chargeKernel(3*4*int64(len(u)), int64(len(u)))
	return out
}
