package gpu

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// Regression: Allocation.Free used an unsynchronized pointer write to mark
// the allocation released, so goroutines racing Free on one allocation
// could both release the bytes (driving InUse negative and corrupting the
// capacity bound). Free now claims the device pointer with an atomic swap;
// exactly one racer releases. Run under -race.
func TestAllocationConcurrentFreeIdempotent(t *testing.T) {
	const capacity = 1 << 12
	d := tinyDevice(capacity)
	for iter := 0; iter < 200; iter++ {
		a, err := d.Alloc(capacity / 2)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				a.Free()
			}()
		}
		wg.Wait()
		if got := d.InUse(); got != 0 {
			t.Fatalf("iter %d: InUse = %d after concurrent frees, want 0 (double release)", iter, got)
		}
	}
	if got := d.MemTracker().Peak(); got != capacity/2 {
		t.Fatalf("peak = %d, want %d", got, capacity/2)
	}
}

// Regression: AllocWait's impossible-request error reported InUse: 0
// regardless of how much memory was actually claimed, making the
// diagnostic useless exactly when a capacity bug needs it. The error must
// carry the device's real usage at rejection time.
func TestAllocWaitOverCapacityReportsRealInUse(t *testing.T) {
	const capacity = 1 << 12
	d := tinyDevice(capacity)
	held, err := d.Alloc(capacity / 4)
	if err != nil {
		t.Fatal(err)
	}
	defer held.Free()

	_, err = d.AllocWait(context.Background(), capacity+1)
	var oom ErrOutOfMemory
	if !errors.As(err, &oom) {
		t.Fatalf("error = %v (%T), want ErrOutOfMemory", err, err)
	}
	if oom.Requested != capacity+1 || oom.Capacity != capacity {
		t.Errorf("oom fields = %+v", oom)
	}
	if oom.InUse != capacity/4 {
		t.Fatalf("oom.InUse = %d, want real usage %d", oom.InUse, capacity/4)
	}
	wantMsg := fmt.Sprintf("requested %d with %d in use of %d", capacity+1, capacity/4, capacity)
	if !strings.Contains(err.Error(), wantMsg) {
		t.Fatalf("error message %q does not report real usage (want substring %q)", err, wantMsg)
	}
}

// Regression: AllocWait recorded its claim in the peak tracker only after
// dropping the device lock, and Free released the tracker only after
// dropping it, so a grant racing a free could be double-counted and record
// a peak above the physical capacity — impossible on a real card. The
// tracker updates now share the lock with the inUse transitions, so the
// recorded peak can never exceed what the allocator admitted.
func TestAllocPeakNeverExceedsCapacity(t *testing.T) {
	const (
		capacity   = 1 << 10
		goroutines = 8
	)
	d := tinyDevice(capacity)

	// Phase 1: spinning full-capacity Alloc/Free. A releaser's deferred
	// tracker update racing the next grant's locked one is exactly the
	// interleaving that used to double-count.
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200000; i++ {
				a, err := d.Alloc(capacity)
				if err != nil {
					var oom ErrOutOfMemory
					if !errors.As(err, &oom) {
						t.Error(err)
						return
					}
					continue
				}
				a.Free()
			}
		}()
	}
	wg.Wait()
	if peak := d.MemTracker().Peak(); peak > capacity {
		t.Fatalf("recorded peak %d exceeds device capacity %d (tracker raced the allocator)", peak, capacity)
	}

	// Phase 2: the same bound under AllocWait backpressure, where grants
	// chase frees through the condition variable.
	ctx := context.Background()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			n := int64(capacity/2 + (g%4)*(capacity/8))
			for i := 0; i < 500; i++ {
				a, err := d.AllocWait(ctx, n)
				if err != nil {
					t.Errorf("goroutine %d iter %d: %v", g, i, err)
					return
				}
				a.Free()
			}
		}(g)
	}
	wg.Wait()
	if got := d.InUse(); got != 0 {
		t.Fatalf("InUse = %d after drain, want 0", got)
	}
	if peak := d.MemTracker().Peak(); peak > capacity {
		t.Fatalf("recorded peak %d exceeds device capacity %d (tracker raced the allocator)", peak, capacity)
	}
}
