// Package gpu simulates the CUDA device that LaSAGNA runs on: a bounded
// device-memory allocator, batch-oriented data-parallel primitives (the
// Thrust calls the paper builds on: radix sort by key, merge by key,
// vectorized lower/upper bound, exclusive scan, gather), and an analytic
// performance model per GPU card.
//
// Why a simulation: the reproduction environment has no GPU, but every
// algorithmic property the paper evaluates flows from two things this
// package preserves exactly — (1) device memory is a hard capacity limit
// that forces chunked, streamed processing, and (2) device primitives are
// bandwidth-bound bulk operations whose cost is proportional to bytes
// moved. Primitives execute on the CPU (producing real results) while the
// device meters the bytes and operations a GPU would spend, so modeled
// times reproduce the published GPU-vs-GPU trends (Fig. 9).
package gpu

import "repro/internal/costmodel"

// Spec describes one GPU card. Values follow NVIDIA's published
// specifications for the boards used in the paper's evaluation.
type Spec struct {
	Name             string
	Cores            int     // CUDA cores
	ClockMHz         int     // boost clock
	MemBandwidthGBps float64 // peak device-memory bandwidth
	MemBytes         int64   // device memory capacity
	// HostLinkGBps is the host<->device transfer bandwidth: PCIe 3.0 for
	// the Kepler/Pascal PCIe boards, NVLink for the SXM2 P100/V100 that
	// populate the PSG cluster used in Fig. 9.
	HostLinkGBps float64
}

const gib = int64(1024 * 1024 * 1024)

// The cards used in the paper's evaluation (Sections IV-B to IV-C.5).
var (
	// K20X powers the SuperMic nodes (6 GB; the paper's headline
	// "single GPU with only 6 GB device memory" configuration).
	K20X = Spec{Name: "K20X", Cores: 2688, ClockMHz: 732, MemBandwidthGBps: 250, MemBytes: 6 * gib, HostLinkGBps: 10}
	// K40 powers the QueenBee II nodes (12 GB).
	K40 = Spec{Name: "K40", Cores: 2880, ClockMHz: 745, MemBandwidthGBps: 288, MemBytes: 12 * gib, HostLinkGBps: 12}
	// P40 has more cores and memory than P100 but much lower bandwidth;
	// the paper highlights that it is consistently slower (Fig. 9).
	P40  = Spec{Name: "P40", Cores: 3840, ClockMHz: 1303, MemBandwidthGBps: 346, MemBytes: 24 * gib, HostLinkGBps: 12}
	P100 = Spec{Name: "P100", Cores: 3584, ClockMHz: 1328, MemBandwidthGBps: 732, MemBytes: 16 * gib, HostLinkGBps: 32}
	V100 = Spec{Name: "V100", Cores: 5120, ClockMHz: 1530, MemBandwidthGBps: 900, MemBytes: 16 * gib, HostLinkGBps: 40}
)

// Catalog lists all modeled cards in the order Fig. 9 plots them.
var Catalog = []Spec{K20X, K40, P40, P100, V100}

// SpecByName returns the card with the given name, or false.
func SpecByName(name string) (Spec, bool) {
	for _, s := range Catalog {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// effective utilization factors: real kernels achieve a fraction of peak.
const (
	memEfficiency   = 0.70 // achieved fraction of peak memory bandwidth
	opsPerCoreClock = 0.25 // effective fused key-ops per core per cycle
)

// MemBps returns the modeled achievable device-memory bandwidth in
// bytes/second.
func (s Spec) MemBps() float64 {
	return s.MemBandwidthGBps * 1e9 * memEfficiency
}

// OpsPerSec returns the modeled scalar operation throughput.
func (s Spec) OpsPerSec() float64 {
	return float64(s.Cores) * float64(s.ClockMHz) * 1e6 * opsPerCoreClock
}

// LinkBps returns the modeled host<->device transfer bandwidth in
// bytes/second.
func (s Spec) LinkBps() float64 {
	if s.HostLinkGBps <= 0 {
		return costmodel.PCIe3Bps
	}
	return s.HostLinkGBps * 1e9 * memEfficiency
}

// CostProfile builds a costmodel profile for a machine holding this card,
// with the given disk parameters.
func (s Spec) CostProfile(diskRead, diskWrite float64) costmodel.Profile {
	return costmodel.Profile{
		Name:            s.Name,
		DiskReadBps:     diskRead,
		DiskWriteBps:    diskWrite,
		NetBps:          costmodel.InfiniBand56G,
		HostMemBps:      costmodel.HostMemBps,
		DeviceMemBps:    s.MemBps(),
		DeviceOpsPerSec: s.OpsPerSec(),
		PCIeBps:         s.LinkBps(),
	}
}
