package gpu

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/costmodel"
)

// Fleet is a fixed set of simulated devices — the multi-GPU substrate the
// serving scheduler and the cluster simulation both run on. Each device
// has its own allocator, meter, and hooks, so per-device memory pressure,
// metering, and tracing never bleed across cards. Specs may be
// heterogeneous: a fleet can mix a 6 GB K20X with a 16 GB P100 and the
// placement layers above decide which card a job fits on.
//
// The fleet itself holds no scheduling state; it is the inventory. The
// serve scheduler leases job demands off fleet devices for admission, and
// the cluster layer binds node i to device i for sharded execution.
type Fleet struct {
	devs []*Device
}

// NewFleet builds one device per spec, each with a private meter. At
// least one spec is required and every spec needs memory capacity.
func NewFleet(specs []Spec) (*Fleet, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("gpu: fleet needs at least one device spec")
	}
	f := &Fleet{devs: make([]*Device, len(specs))}
	for i, s := range specs {
		if s.MemBytes <= 0 {
			return nil, fmt.Errorf("gpu: fleet device %d (%s) has no memory capacity", i, s.Name)
		}
		f.devs[i] = NewDevice(s, costmodel.NewMeter())
	}
	return f, nil
}

// Size returns the number of devices in the fleet.
func (f *Fleet) Size() int { return len(f.devs) }

// Device returns the i-th device.
func (f *Fleet) Device(i int) *Device { return f.devs[i] }

// Devices returns the fleet's devices in index order. The slice is the
// fleet's own; callers must not mutate it.
func (f *Fleet) Devices() []*Device { return f.devs }

// TotalCapacity returns the summed memory capacity of every device — the
// denominator for fleet-wide tenant shares.
func (f *Fleet) TotalCapacity() int64 {
	var total int64
	for _, d := range f.devs {
		total += d.Capacity()
	}
	return total
}

// MaxCapacity returns the largest single-device capacity: the biggest
// unsharded job the fleet can ever place.
func (f *Fleet) MaxCapacity() int64 {
	var m int64
	for _, d := range f.devs {
		if c := d.Capacity(); c > m {
			m = c
		}
	}
	return m
}

// FitCount returns how many devices can hold a claim of n bytes — the
// maximum shard count for a job whose per-shard demand is n.
func (f *Fleet) FitCount(n int64) int {
	count := 0
	for _, d := range f.devs {
		if d.Capacity() >= n {
			count++
		}
	}
	return count
}

// ParseSpecs parses a comma-separated device list like "K40,K40,P100"
// into fleet specs. Each element is a catalog card name, optionally with
// a count prefix ("4xK40" expands to four K40s).
func ParseSpecs(list string) ([]Spec, error) {
	var specs []Spec
	for _, item := range strings.Split(list, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		count := 1
		name := item
		if i := strings.IndexByte(item, 'x'); i > 0 {
			if n, err := strconv.Atoi(item[:i]); err == nil {
				if n < 1 {
					return nil, fmt.Errorf("gpu: device count %d in %q must be >= 1", n, item)
				}
				count = n
				name = item[i+1:]
			}
		}
		spec, ok := SpecByName(name)
		if !ok {
			return nil, fmt.Errorf("gpu: unknown device %q (want one of the catalog cards)", name)
		}
		for i := 0; i < count; i++ {
			specs = append(specs, spec)
		}
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("gpu: empty device list %q", list)
	}
	return specs, nil
}
