package gpu

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/kv"
)

// TestSortScratchPoolReuse pins the radix sort's allocation behavior:
// once the scratch pool is warm, sorting allocates nothing.
func TestSortScratchPoolReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	d := testDevice()
	pristine := randomPairs(rng, 2048, 1<<62)
	work := make([]kv.Pair, len(pristine))
	copy(work, pristine)
	d.SortPairs(work) // warm the pool
	allocs := testing.AllocsPerRun(50, func() {
		copy(work, pristine)
		d.SortPairs(work)
	})
	// The sync.Pool may be drained by a GC mid-run; tolerate a stray
	// refill but not per-call scratch allocation.
	if allocs > 1 {
		t.Fatalf("warm SortPairs allocates %.2f times per call, want ~0", allocs)
	}
}

// TestSortScratchPoolSizes pins correctness when differently sized sorts
// interleave: a pooled scratch from a large sort must be clamped for a
// smaller one, and a too-small scratch must be replaced, with the sorted
// output (keys and values) identical to the reference either way.
func TestSortScratchPoolSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	d := testDevice()
	for _, n := range []int{3000, 7, 1024, 2, 4096, 100} {
		ps := randomPairs(rng, n, 8) // heavy duplicates exercise stability
		want := append([]kv.Pair(nil), ps...)
		sort.SliceStable(want, func(i, j int) bool { return want[i].Less(want[j]) })
		d.SortPairs(ps)
		for i := range ps {
			if ps[i] != want[i] {
				t.Fatalf("n=%d: pair %d = %v, want %v", n, i, ps[i], want[i])
			}
		}
	}
}
