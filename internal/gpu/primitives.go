package gpu

import (
	"math/bits"

	"repro/internal/kv"
)

// VecLowerBound computes, for every query key in queries, the lower bound
// (index of first element not less than the key) within the sorted targets
// slice. This is the GPU_VEC_LOWER_BOUND primitive of Algorithm 2: one
// thread per query performing a binary search.
func (d *Device) VecLowerBound(queries, targets []kv.Pair, out []int32) []int32 {
	out = vecLowerBoundKernel(queries, targets, out)
	d.chargeSearch(len(queries), len(targets))
	return out
}

func vecLowerBoundKernel(queries, targets []kv.Pair, out []int32) []int32 {
	out = out[:0]
	for _, q := range queries {
		out = append(out, int32(kv.LowerBound(targets, q.Key)))
	}
	return out
}

// VecUpperBound is the upper-bound counterpart (GPU_VEC_UPPER_BOUND).
func (d *Device) VecUpperBound(queries, targets []kv.Pair, out []int32) []int32 {
	out = vecUpperBoundKernel(queries, targets, out)
	d.chargeSearch(len(queries), len(targets))
	return out
}

func vecUpperBoundKernel(queries, targets []kv.Pair, out []int32) []int32 {
	out = out[:0]
	for _, q := range queries {
		out = append(out, int32(kv.UpperBound(targets, q.Key)))
	}
	return out
}

// VecDifference computes u[i]-l[i] element-wise (GPU_VEC_DIFFERENCE): the
// per-suffix match counts in the reduce phase.
func (d *Device) VecDifference(u, l []int32, out []int32) []int32 {
	out = vecDifferenceKernel(u, l, out)
	d.ChargeKernel(3*4*int64(len(u)), int64(len(u)))
	return out
}

func vecDifferenceKernel(u, l []int32, out []int32) []int32 {
	out = out[:0]
	for i := range u {
		out = append(out, u[i]-l[i])
	}
	return out
}

func (d *Device) chargeSearch(numQueries, targetLen int) {
	if numQueries == 0 {
		return
	}
	d.ChargeKernel(searchCost(numQueries, targetLen))
}

// searchCost is the modeled cost of a vectorized binary search: one
// thread per query descending log2(targetLen) levels.
func searchCost(numQueries, targetLen int) (memBytes, ops int64) {
	depth := 1
	if targetLen > 1 {
		depth = bits.Len(uint(targetLen - 1))
	}
	ops = int64(numQueries) * int64(depth)
	return ops * kv.PairBytes, ops
}

// ExclusiveScan computes the exclusive prefix sum of xs into out and
// returns the total. It is the exclusive prefix-scan used by the contig
// generation phase (Fig. 7) to lay out path and read offsets.
func (d *Device) ExclusiveScan(xs []int64, out []int64) int64 {
	var sum int64
	for i, x := range xs {
		out[i] = sum
		sum += x
	}
	d.ChargeKernel(2*8*int64(len(xs)), int64(len(xs)))
	return sum
}

// Gather copies src[idx[i]] into out[i] for each i — the device gather
// (stencil) operation used to place per-read overhang tuples into
// read-ID-indexed slots during contig generation.
func Gather[T any](d *Device, src []T, idx []int32, out []T) {
	for i, ix := range idx {
		out[i] = src[ix]
	}
	var t T
	_ = t
	d.ChargeKernel(2*int64(len(idx))*8, int64(len(idx)))
}

// Scatter copies src[i] into out[idx[i]] for each i, the inverse of
// Gather.
func Scatter[T any](d *Device, src []T, idx []int32, out []T) {
	for i, ix := range idx {
		out[ix] = src[i]
	}
	d.ChargeKernel(2*int64(len(idx))*8, int64(len(idx)))
}
