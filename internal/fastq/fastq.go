// Package fastq reads and writes the sequence file formats the pipeline
// consumes (FASTQ, the native Illumina output the paper's datasets come
// in) and produces (FASTA for contigs).
//
// The readers are streaming: the distributed map phase hands out fixed
// size input blocks, so the package also provides a block reader that
// yields batches of reads without holding the whole dataset in memory.
package fastq

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/dna"
)

// Record is one sequence record. Quality is nil for FASTA input.
type Record struct {
	Name    string
	Seq     dna.Seq
	Quality []byte
}

// Reader streams records from FASTQ or FASTA input, auto-detected from the
// first byte ('@' FASTQ, '>' FASTA).
type Reader struct {
	br     *bufio.Reader
	fasta  bool
	probed bool
	line   int
}

// NewReader wraps r in a streaming record reader.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 1<<16)}
}

func (r *Reader) probe() error {
	if r.probed {
		return nil
	}
	b, err := r.br.Peek(1)
	if err != nil {
		return err
	}
	switch b[0] {
	case '>':
		r.fasta = true
	case '@':
		r.fasta = false
	default:
		return fmt.Errorf("fastq: unrecognized leading byte %q", b[0])
	}
	r.probed = true
	return nil
}

func (r *Reader) readLine() (string, error) {
	s, err := r.br.ReadString('\n')
	if err != nil && (err != io.EOF || s == "") {
		return "", err
	}
	r.line++
	return strings.TrimRight(s, "\r\n"), nil
}

// Next returns the next record, or io.EOF when the input is exhausted.
func (r *Reader) Next() (Record, error) {
	if err := r.probe(); err != nil {
		return Record{}, err
	}
	if r.fasta {
		return r.nextFasta()
	}
	return r.nextFastq()
}

func (r *Reader) nextFastq() (Record, error) {
	header, err := r.readLine()
	if err != nil {
		return Record{}, err
	}
	if header == "" {
		return Record{}, io.EOF
	}
	if !strings.HasPrefix(header, "@") {
		return Record{}, fmt.Errorf("fastq: line %d: expected '@' header, got %q", r.line, header)
	}
	seqLine, err := r.readLine()
	if err != nil {
		return Record{}, fmt.Errorf("fastq: line %d: truncated record: %w", r.line, err)
	}
	plus, err := r.readLine()
	if err != nil || !strings.HasPrefix(plus, "+") {
		return Record{}, fmt.Errorf("fastq: line %d: expected '+' separator", r.line)
	}
	qual, err := r.readLine()
	if err != nil {
		return Record{}, fmt.Errorf("fastq: line %d: missing quality line: %w", r.line, err)
	}
	if len(qual) != len(seqLine) {
		return Record{}, fmt.Errorf("fastq: line %d: quality length %d != sequence length %d",
			r.line, len(qual), len(seqLine))
	}
	seq, err := dna.ParseSeq(seqLine)
	if err != nil {
		return Record{}, fmt.Errorf("fastq: line %d: %w", r.line, err)
	}
	return Record{Name: header[1:], Seq: seq, Quality: []byte(qual)}, nil
}

func (r *Reader) nextFasta() (Record, error) {
	header, err := r.readLine()
	if err != nil {
		return Record{}, err
	}
	if header == "" {
		return Record{}, io.EOF
	}
	if !strings.HasPrefix(header, ">") {
		return Record{}, fmt.Errorf("fastq: line %d: expected '>' header, got %q", r.line, header)
	}
	var sb strings.Builder
	for {
		b, err := r.br.Peek(1)
		if err == io.EOF {
			break
		}
		if err != nil {
			return Record{}, err
		}
		if b[0] == '>' {
			break
		}
		line, err := r.readLine()
		if err != nil {
			return Record{}, err
		}
		sb.WriteString(line)
	}
	seq, err := dna.ParseSeq(sb.String())
	if err != nil {
		return Record{}, fmt.Errorf("fastq: record %q: %w", header, err)
	}
	return Record{Name: header[1:], Seq: seq}, nil
}

// ReadAll loads every record from r into a read set, returning the names
// alongside. It is intended for datasets that fit in host memory, which
// all scaled reproduction datasets do.
func ReadAll(r io.Reader) (*dna.ReadSet, []string, error) {
	rd := NewReader(r)
	rs := dna.NewReadSet(1024, 1<<20)
	var names []string
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			return rs, names, nil
		}
		if err != nil {
			return nil, nil, err
		}
		rs.Append(rec.Seq)
		names = append(names, rec.Name)
	}
}

// ReadFile loads a FASTQ/FASTA file into a read set.
func ReadFile(path string) (*dna.ReadSet, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return ReadAll(f)
}

// Writer emits records. The format is chosen at construction.
type Writer struct {
	bw    *bufio.Writer
	fasta bool
	width int
}

// NewFastaWriter writes FASTA with the given line width (<=0 means a
// single line per sequence).
func NewFastaWriter(w io.Writer, width int) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 1<<16), fasta: true, width: width}
}

// NewFastqWriter writes FASTQ; records without quality get a constant
// placeholder quality.
func NewFastqWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 1<<16)}
}

// Write emits one record.
func (w *Writer) Write(rec Record) error {
	if w.fasta {
		if _, err := fmt.Fprintf(w.bw, ">%s\n", rec.Name); err != nil {
			return err
		}
		s := rec.Seq.String()
		if w.width <= 0 {
			_, err := fmt.Fprintln(w.bw, s)
			return err
		}
		for len(s) > 0 {
			n := w.width
			if n > len(s) {
				n = len(s)
			}
			if _, err := fmt.Fprintln(w.bw, s[:n]); err != nil {
				return err
			}
			s = s[n:]
		}
		return nil
	}
	qual := rec.Quality
	if qual == nil {
		qual = make([]byte, len(rec.Seq))
		for i := range qual {
			qual[i] = 'I'
		}
	}
	_, err := fmt.Fprintf(w.bw, "@%s\n%s\n+\n%s\n", rec.Name, rec.Seq.String(), qual)
	return err
}

// Flush flushes buffered output.
func (w *Writer) Flush() error { return w.bw.Flush() }

// WriteFastqFile writes a read set to a FASTQ file, one record per read
// with synthetic names.
func WriteFastqFile(path string, rs *dna.ReadSet) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := NewFastqWriter(f)
	for i := 0; i < rs.NumReads(); i++ {
		if err := w.Write(Record{Name: fmt.Sprintf("read%d", i), Seq: rs.Read(uint32(i))}); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return f.Close()
}
