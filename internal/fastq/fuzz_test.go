package fastq

import (
	"bytes"
	"io"
	"testing"
)

// parseAll drains a reader, returning the records parsed before the first
// error (io.EOF counts as clean termination).
func parseAll(data []byte) ([]Record, error) {
	r := NewReader(bytes.NewReader(data))
	var recs []Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return recs, err
		}
		recs = append(recs, rec)
	}
}

// FuzzReader throws arbitrary bytes at the FASTQ/FASTA auto-detecting
// parser. The parser must never panic, and any input it fully accepts must
// survive a write/re-parse round trip through both output formats —
// records coming out of the parser are always canonical (trimmed names,
// quality the same length as the sequence), so the writers must preserve
// them exactly.
func FuzzReader(f *testing.F) {
	f.Add([]byte("@r1\nACGT\n+\nIIII\n"))
	f.Add([]byte("@r1\nACGT\n+\nIIII\n@r2\nTT\n+\nII\n"))
	f.Add([]byte(">c1\nACGTACGT\nACGT\n>c2\nTTTT\n"))
	f.Add([]byte(">empty\n"))
	f.Add([]byte("@bad\nACGT\n+\nII\n"))   // quality length mismatch
	f.Add([]byte("@trunc\nACGT\n"))        // truncated record
	f.Add([]byte("plain text, no header")) // unrecognized leading byte
	f.Add([]byte("@r\nacgt\n+\n!!!!\n"))   // lowercase bases, low quality
	f.Add([]byte(">crlf\r\nACGT\r\n"))     // CRLF line endings
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := parseAll(data)
		if err != nil || len(recs) == 0 {
			return // rejected input must just not panic
		}

		// Round trip through FASTQ.
		var fq bytes.Buffer
		w := NewFastqWriter(&fq)
		for _, rec := range recs {
			if err := w.Write(rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		again, err := parseAll(fq.Bytes())
		if err != nil {
			t.Fatalf("FASTQ round trip failed to parse: %v", err)
		}
		compareRecords(t, "fastq", recs, again, true)

		// Round trip through FASTA (quality is dropped by the format).
		var fa bytes.Buffer
		w = NewFastaWriter(&fa, 5) // tiny width forces multi-line sequences
		for _, rec := range recs {
			if err := w.Write(rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		again, err = parseAll(fa.Bytes())
		if err != nil {
			t.Fatalf("FASTA round trip failed to parse: %v", err)
		}
		compareRecords(t, "fasta", recs, again, false)
	})
}

func compareRecords(t *testing.T, format string, want, got []Record, quality bool) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s round trip: %d records, want %d", format, len(got), len(want))
	}
	for i := range want {
		if got[i].Name != want[i].Name {
			t.Fatalf("%s record %d: name %q, want %q", format, i, got[i].Name, want[i].Name)
		}
		if !got[i].Seq.Equal(want[i].Seq) {
			t.Fatalf("%s record %d: sequence differs", format, i)
		}
		if quality && want[i].Quality != nil && !bytes.Equal(got[i].Quality, want[i].Quality) {
			t.Fatalf("%s record %d: quality %q, want %q", format, i, got[i].Quality, want[i].Quality)
		}
	}
}
