package fastq

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dna"
)

func sampleSet(t *testing.T, seqs ...string) *dna.ReadSet {
	t.Helper()
	rs := dna.NewReadSet(len(seqs), 256)
	for _, s := range seqs {
		rs.Append(dna.MustParseSeq(s))
	}
	return rs
}

func TestGzipRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "reads.fastq.gz")
	rs := sampleSet(t, "ACGTACGTAA", "TTGGCCAA")
	if err := WriteFastqGzip(path, rs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFiles(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumReads() != 2 {
		t.Fatalf("NumReads = %d", got.NumReads())
	}
	for i := 0; i < 2; i++ {
		if !got.Read(uint32(i)).Equal(rs.Read(uint32(i))) {
			t.Errorf("read %d mismatch", i)
		}
	}
	// The file must really be gzipped (magic bytes).
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 2 || raw[0] != 0x1f || raw[1] != 0x8b {
		t.Error("output lacks gzip magic")
	}
}

func TestReadFilesMultipleMixed(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "a.fastq")
	zipped := filepath.Join(dir, "b.fastq.gz")
	if err := WriteFastqFile(plain, sampleSet(t, "AAAA", "CCCC")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFastqGzip(zipped, sampleSet(t, "GGGG")); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFiles(plain, zipped)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumReads() != 3 {
		t.Fatalf("NumReads = %d, want 3", got.NumReads())
	}
	if got.Read(2).String() != "GGGG" {
		t.Errorf("file order not preserved: %q", got.Read(2).String())
	}
}

func TestReadFilesErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadFiles(filepath.Join(dir, "missing.fastq")); err == nil {
		t.Error("missing file should fail")
	}
	// A .gz file that is not gzipped.
	fake := filepath.Join(dir, "fake.fastq.gz")
	if err := os.WriteFile(fake, []byte("@r\nACGT\n+\nIIII\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFiles(fake); err == nil {
		t.Error("non-gzip .gz file should fail")
	}
	// Corrupt record inside a valid file.
	bad := filepath.Join(dir, "bad.fastq")
	if err := os.WriteFile(bad, []byte("@r\nAXGT\n+\nIIII\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFiles(bad); err == nil {
		t.Error("corrupt record should fail")
	}
}
