package fastq

import (
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/dna"
)

// Real sequencing datasets (including every dataset in the paper's Table
// I) arrive as multiple gzipped FASTQ files per run. This file adds
// transparent gzip handling and multi-file loading on top of the
// streaming reader.

// openMaybeGzip opens path, transparently unwrapping a gzip layer when
// the filename ends in .gz (or the content carries the gzip magic).
func openMaybeGzip(path string) (io.ReadCloser, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	if !strings.HasSuffix(path, ".gz") {
		return f, nil
	}
	zr, err := gzip.NewReader(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("fastq: %s: %w", path, err)
	}
	return &gzipFile{zr: zr, f: f}, nil
}

type gzipFile struct {
	zr *gzip.Reader
	f  *os.File
}

func (g *gzipFile) Read(p []byte) (int, error) { return g.zr.Read(p) }

func (g *gzipFile) Close() error {
	zerr := g.zr.Close()
	ferr := g.f.Close()
	if zerr != nil {
		return zerr
	}
	return ferr
}

// ReadFiles loads every record from the given FASTQ/FASTA files (plain or
// gzipped) into one read set, in file order.
func ReadFiles(paths ...string) (*dna.ReadSet, error) {
	rs := dna.NewReadSet(1024, 1<<20)
	for _, path := range paths {
		rc, err := openMaybeGzip(path)
		if err != nil {
			return nil, err
		}
		rd := NewReader(rc)
		for {
			rec, err := rd.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				rc.Close()
				return nil, fmt.Errorf("fastq: %s: %w", path, err)
			}
			rs.Append(rec.Seq)
		}
		if err := rc.Close(); err != nil {
			return nil, err
		}
	}
	return rs, nil
}

// WriteFastqGzip writes a read set as a gzipped FASTQ file.
func WriteFastqGzip(path string, rs *dna.ReadSet) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	zw := gzip.NewWriter(f)
	w := NewFastqWriter(zw)
	for i := 0; i < rs.NumReads(); i++ {
		if err := w.Write(Record{Name: fmt.Sprintf("read%d", i), Seq: rs.Read(uint32(i))}); err != nil {
			zw.Close()
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		zw.Close()
		f.Close()
		return err
	}
	if err := zw.Close(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
