package fastq

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dna"
)

const sampleFastq = `@read0 lane1
ACGTACGT
+
IIIIIIII
@read1
GGCC
+
!!!!
`

const sampleFasta = `>contig0 first
ACGTAC
GTTT
>contig1
GG
`

func TestReadFastq(t *testing.T) {
	r := NewReader(strings.NewReader(sampleFastq))
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Name != "read0 lane1" || rec.Seq.String() != "ACGTACGT" || string(rec.Quality) != "IIIIIIII" {
		t.Errorf("record 0 = %+v", rec)
	}
	rec, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Name != "read1" || rec.Seq.String() != "GGCC" {
		t.Errorf("record 1 = %+v", rec)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestReadFasta(t *testing.T) {
	r := NewReader(strings.NewReader(sampleFasta))
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Name != "contig0 first" || rec.Seq.String() != "ACGTACGTTT" {
		t.Errorf("record 0 = %q %q", rec.Name, rec.Seq.String())
	}
	rec, err = r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Seq.String() != "GG" {
		t.Errorf("record 1 seq = %q", rec.Seq.String())
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"bad leading byte":   "xACGT\n",
		"missing plus":       "@r\nACGT\nACGT\nIIII\n",
		"quality mismatch":   "@r\nACGT\n+\nII\n",
		"bad base":           "@r\nAXGT\n+\nIIII\n",
		"truncated record":   "@r\n",
		"bad fasta interior": ">r\nAC!T\n",
	}
	for name, input := range cases {
		r := NewReader(strings.NewReader(input))
		if _, err := r.Next(); err == nil || err == io.EOF {
			t.Errorf("%s: expected parse error, got %v", name, err)
		}
	}
}

func TestReadAllAndRoundTripFile(t *testing.T) {
	dir := t.TempDir()
	rs := dna.NewReadSet(3, 30)
	rs.Append(dna.MustParseSeq("ACGTACGTAA"))
	rs.Append(dna.MustParseSeq("TTTTGGGG"))
	path := filepath.Join(dir, "reads.fastq")
	if err := WriteFastqFile(path, rs); err != nil {
		t.Fatal(err)
	}
	got, names, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumReads() != 2 || names[0] != "read0" || names[1] != "read1" {
		t.Fatalf("NumReads=%d names=%v", got.NumReads(), names)
	}
	for i := 0; i < 2; i++ {
		if !got.Read(uint32(i)).Equal(rs.Read(uint32(i))) {
			t.Errorf("read %d mismatch", i)
		}
	}
}

func TestFastaWriterWidth(t *testing.T) {
	var buf bytes.Buffer
	w := NewFastaWriter(&buf, 4)
	err := w.Write(Record{Name: "c0", Seq: dna.MustParseSeq("ACGTACGTAC")})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	want := ">c0\nACGT\nACGT\nAC\n"
	if buf.String() != want {
		t.Errorf("got %q, want %q", buf.String(), want)
	}
	// Round trip through the reader.
	r := NewReader(strings.NewReader(buf.String()))
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Seq.String() != "ACGTACGTAC" {
		t.Errorf("round trip = %q", rec.Seq.String())
	}
}

func TestFastaWriterSingleLine(t *testing.T) {
	var buf bytes.Buffer
	w := NewFastaWriter(&buf, 0)
	if err := w.Write(Record{Name: "c", Seq: dna.MustParseSeq("ACGT")}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.String() != ">c\nACGT\n" {
		t.Errorf("got %q", buf.String())
	}
}

func TestFastqWriterPlaceholderQuality(t *testing.T) {
	var buf bytes.Buffer
	w := NewFastqWriter(&buf)
	if err := w.Write(Record{Name: "r", Seq: dna.MustParseSeq("ACG")}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "@r\nACG\n+\nIII\n" {
		t.Errorf("got %q", buf.String())
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, _, err := ReadFile(filepath.Join(t.TempDir(), "nope.fastq")); !os.IsNotExist(err) {
		t.Errorf("expected not-exist error, got %v", err)
	}
}

func TestAmbiguousBasesCollapse(t *testing.T) {
	r := NewReader(strings.NewReader("@r\nANNT\n+\nIIII\n"))
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Seq.String() != "AAAT" {
		t.Errorf("N should collapse to A, got %q", rec.Seq.String())
	}
}
