// Command readgen generates synthetic shotgun-sequencing datasets: scaled
// stand-ins for the paper's Illumina runs (Table I), or fully custom
// genomes.
//
// Usage:
//
//	readgen -profile H.Chr14 -scale 0.5 -out reads.fastq [-genome genome.fasta]
//	readgen -genome-len 50000 -read-len 100 -coverage 20 -error 0.01 -out reads.fastq
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dna"
	"repro/internal/fastq"
	"repro/internal/readsim"
	"repro/internal/stats"
)

func main() {
	var (
		profileName = flag.String("profile", "", "dataset profile (H.Chr14, Bumblebee, Parakeet, H.Genome); empty for custom")
		scale       = flag.Float64("scale", 1.0, "profile scale factor")
		out         = flag.String("out", "reads.fastq", "output FASTQ path")
		genomeOut   = flag.String("genome", "", "optional FASTA path for the reference genome")
		genomeLen   = flag.Int("genome-len", 50000, "custom genome length")
		readLen     = flag.Int("read-len", 100, "custom read length")
		coverage    = flag.Float64("coverage", 20, "custom coverage")
		errRate     = flag.Float64("error", 0, "custom per-base substitution error rate")
		seed        = flag.Int64("seed", 42, "custom generator seed")
	)
	flag.Parse()

	var genome dna.Seq
	var reads *dna.ReadSet
	if *profileName != "" {
		p, ok := readsim.ProfileByName(*profileName)
		if !ok {
			fmt.Fprintf(os.Stderr, "readgen: unknown profile %q; available:", *profileName)
			for _, pr := range readsim.Profiles {
				fmt.Fprintf(os.Stderr, " %s", pr.Name)
			}
			fmt.Fprintln(os.Stderr)
			os.Exit(2)
		}
		p = p.Scaled(*scale)
		genome, reads = p.Generate()
		fmt.Printf("profile %s (scale %.3g): genome %s, %s reads of length %d, lmin %d\n",
			p.Name, *scale, stats.FormatCount(int64(p.GenomeLen)),
			stats.FormatCount(int64(reads.NumReads())), p.ReadLen, p.MinOverlap)
	} else {
		genome = readsim.Genome(readsim.GenomeParams{
			Length: *genomeLen, RepeatLen: *readLen / 2, RepeatCount: *genomeLen / 20000,
			Seed: *seed,
		})
		reads = readsim.Simulate(genome, readsim.ReadParams{
			ReadLen: *readLen, Coverage: *coverage, ErrorRate: *errRate, Seed: *seed + 1,
		})
		fmt.Printf("custom: genome %s, %s reads of length %d (%.1fx, error %.3g)\n",
			stats.FormatCount(int64(*genomeLen)), stats.FormatCount(int64(reads.NumReads())),
			*readLen, *coverage, *errRate)
	}

	if err := fastq.WriteFastqFile(*out, reads); err != nil {
		fmt.Fprintf(os.Stderr, "readgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%s bases)\n", *out, stats.FormatCount(reads.TotalBases()))

	if *genomeOut != "" {
		f, err := os.Create(*genomeOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "readgen: %v\n", err)
			os.Exit(1)
		}
		w := fastq.NewFastaWriter(f, 80)
		if err := w.Write(fastq.Record{Name: "genome", Seq: genome}); err == nil {
			err = w.Flush()
		}
		if err == nil {
			err = f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "readgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *genomeOut)
	}
}
