// Command lasagna-serve runs the multi-tenant assembly job service: an
// HTTP API that accepts FASTQ jobs, schedules them with priority-lane and
// device-memory admission control onto a fleet of simulated GPUs (with
// work stealing and batch preemption between cards), persists every job
// transition, and resumes interrupted jobs after a restart.
//
// Usage:
//
//	lasagna-serve -addr localhost:8844 -root ./serve-data
//	lasagna-serve -root ./serve-data -gpu P100 -devices 4 -max-jobs 4 -queue-cap 32
//	lasagna-serve -root ./serve-data -device-specs "2xK40,P100" -tenant-share 0.5
//
// Submit, watch, fetch:
//
//	curl -sf --data-binary @reads.fastq 'http://localhost:8844/v1/jobs?lmin=31&workers=2'
//	curl -sf --data-binary @reads.fastq 'http://localhost:8844/v1/jobs?priority=interactive&tenant=lab1'
//	curl -sf --data-binary @reads.fastq 'http://localhost:8844/v1/jobs?shards=4'
//	curl -sf http://localhost:8844/v1/jobs/<id>
//	curl -sf http://localhost:8844/v1/jobs/<id>/result > contigs.fasta
//
// SIGINT/SIGTERM drain gracefully: the listener closes, running jobs are
// cancelled with their committed stages resumable, and every record is
// flushed; a restarted server picks the interrupted jobs back up through
// their run manifests.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/gpu"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", "localhost:8844", "HTTP listen address")
		root      = flag.String("root", "", "data directory for job records, inputs, and workspaces (required)")
		gpuName   = flag.String("gpu", "K40", "modeled GPU card jobs are costed against (K20X, K40, P40, P100, V100)")
		devices   = flag.Int("devices", 1, "fleet size: number of -gpu cards jobs are scheduled onto")
		devSpecs  = flag.String("device-specs", "", `explicit (possibly heterogeneous) fleet, e.g. "2xK40,P100"; overrides -gpu/-devices`)
		noSteal   = flag.Bool("no-steal", false, "disable work stealing between fleet devices")
		tenantSh  = flag.Float64("tenant-share", 0, "per-tenant cap as a fraction of fleet capacity (0 = uncapped)")
		queueCap  = flag.Int("queue-cap", 16, "run-queue bound; submissions beyond it get HTTP 429")
		maxJobs   = flag.Int("max-jobs", 2, "maximum concurrently running jobs per device")
		hostBlock = flag.Int("host-block", 1<<20, "host block size m_h in pairs, shared by all jobs")
		devBlock  = flag.Int("device-block", 1<<16, "device block size m_d in pairs, shared by all jobs")
		mapBatch  = flag.Int("map-batch", 0, "reads per map device batch (0 = core default)")
		recorder  = flag.Int("flight-recorder", 4096, "flight-recorder event-log capacity: per-job lifecycle events, traces, and SLO histograms (0 disables)")
		drainWait = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for jobs to unwind")
		verbose   = flag.Bool("v", false, "verbose logging: debug-level scheduler and stage events")
		quiet     = flag.Bool("quiet", false, "log errors only")
		logFormat = flag.String("log-format", "text", "structured log format: text or json")
		version   = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("lasagna-serve"))
		return
	}
	if *root == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *logFormat != "text" && *logFormat != "json" {
		fmt.Fprintf(os.Stderr, "lasagna-serve: -log-format must be text or json, got %q\n", *logFormat)
		os.Exit(2)
	}
	spec, ok := gpu.SpecByName(*gpuName)
	if !ok {
		fmt.Fprintf(os.Stderr, "lasagna-serve: unknown GPU %q\n", *gpuName)
		os.Exit(2)
	}
	var fleetSpecs []gpu.Spec
	if *devSpecs != "" {
		var err error
		fleetSpecs, err = gpu.ParseSpecs(*devSpecs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lasagna-serve: %v\n", err)
			os.Exit(2)
		}
	}

	level := slog.LevelInfo
	switch {
	case *quiet:
		level = slog.LevelError
	case *verbose:
		level = slog.LevelDebug
	}
	logger := obs.NewLogger(os.Stderr, level, *logFormat == "json")
	observer := obs.New(logger, nil, obs.NewRegistry())

	srv, err := serve.New(serve.Config{
		Root:                 *root,
		GPU:                  spec,
		Devices:              *devices,
		DeviceSpecs:          fleetSpecs,
		NoSteal:              *noSteal,
		TenantShare:          *tenantSh,
		QueueCap:             *queueCap,
		MaxConcurrent:        *maxJobs,
		HostBlockPairs:       *hostBlock,
		DeviceBlockPairs:     *devBlock,
		MapBatchReads:        *mapBatch,
		FlightRecorderEvents: *recorder,
		Obs:                  observer,
	})
	if err != nil {
		fatal(err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Info("serving", "addr", *addr, "root", *root, "gpu", spec.Name,
		"devices", srv.Fleet().Size(), "queueCap", *queueCap, "maxJobs", *maxJobs)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		logger.Info("shutdown signal received, draining")
	case err := <-errCh:
		fatal(err)
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		logger.Error("closing HTTP listener", "err", err)
	}
	if err := srv.Drain(shutCtx); err != nil {
		fatal(err)
	}
	logger.Info("drained cleanly; interrupted jobs resume on next start")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "lasagna-serve: %v\n", err)
	os.Exit(1)
}
