// Command lasagna assembles a FASTQ/FASTA short-read dataset into contigs
// using the LaSAGNA pipeline (map -> sort -> reduce -> compress) on a
// simulated GPU, or on a simulated multi-node GPU cluster with -nodes.
//
// Usage:
//
//	lasagna -in reads.fastq -workspace ./work -lmin 63
//	lasagna -in reads.fastq -workspace ./work -lmin 63 -nodes 8 -gpu K20X
//	lasagna -in a.fastq.gz,b.fastq.gz -workspace ./work -dedupe -fullgraph -reference genome.fasta
//	lasagna -in reads.fastq -workspace ./work -resume   # re-enter an interrupted run
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro"
	"repro/internal/fastq"
	"repro/internal/quality"
	"repro/internal/stats"
)

func main() {
	var (
		in         = flag.String("in", "", "comma-separated input FASTQ/FASTA files, .gz accepted (required)")
		workspace  = flag.String("workspace", "", "scratch/output directory (required)")
		lmin       = flag.Int("lmin", 63, "minimum overlap length")
		gpuName    = flag.String("gpu", "K40", "modeled GPU (K20X, K40, P40, P100, V100)")
		hostBlock  = flag.Int("host-block", 1<<20, "host block size m_h in pairs")
		devBlock   = flag.Int("device-block", 1<<16, "device block size m_d in pairs")
		nodes      = flag.Int("nodes", 1, "simulated cluster nodes (1 = single-node pipeline)")
		singletons = flag.Bool("singletons", false, "emit single-read contigs for unassembled reads")
		verify     = flag.Bool("verify", false, "verify candidate overlaps against sequences")
		keepFiles  = flag.Bool("keep-intermediate", false, "retain partition/sort files")
		dedupe     = flag.Bool("dedupe", false, "remove duplicate reads before assembly")
		packed     = flag.Bool("packed", false, "store bulk reads 2-bit packed in host memory")
		fullGraph  = flag.Bool("fullgraph", false, "full string graph with transitive reduction instead of greedy")
		bsp        = flag.Bool("parallel-traversal", false, "BSP pointer-jumping path traversal")
		byFp       = flag.Bool("partition-by-fingerprint", false, "distributed shuffle by fingerprint range (with -nodes)")
		workers    = flag.Int("workers", 0, "concurrent partition workers (0 = GOMAXPROCS, 1 = serial; output is identical)")
		reference  = flag.String("reference", "", "optional reference FASTA for a quality report")
		resume     = flag.Bool("resume", false, "resume an interrupted run from the workspace's manifest")
	)
	flag.Parse()
	if *in == "" || *workspace == "" {
		flag.Usage()
		os.Exit(2)
	}
	spec, ok := findGPU(*gpuName)
	if !ok {
		fmt.Fprintf(os.Stderr, "lasagna: unknown GPU %q\n", *gpuName)
		os.Exit(2)
	}
	if err := os.MkdirAll(*workspace, 0o755); err != nil {
		fatal(err)
	}

	inputs := strings.Split(*in, ",")
	reads, err := fastq.ReadFiles(inputs...)
	if err != nil {
		fatal(err)
	}

	// SIGINT/SIGTERM cancel the pipeline between device batches; the
	// stages committed so far stay resumable with -resume.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *nodes > 1 {
		cfg := lasagna.DefaultClusterConfig(*workspace, *nodes)
		cfg.MinOverlap = *lmin
		cfg.GPU = spec
		cfg.HostBlockPairs = *hostBlock
		cfg.DeviceBlockPairs = *devBlock
		cfg.IncludeSingletons = *singletons
		cfg.PartitionByFingerprint = *byFp
		cfg.WorkersPerNode = *workers
		cfg.Resume = *resume
		res, err := lasagna.AssembleDistributedContext(ctx, cfg, reads)
		if err != nil {
			fatal(err)
		}
		reportResumed(res.CachedStages)
		fmt.Printf("distributed assembly on %d simulated %s nodes\n", *nodes, spec.Name)
		for _, ps := range res.Phases {
			fmt.Println("  " + ps.String())
		}
		fmt.Printf("edges: %d candidates, %d accepted\n", res.CandidateEdges, res.AcceptedEdges)
		fmt.Printf("assembly: %s\n", res.ContigStats)
		fmt.Printf("contigs written to %s\n", res.ContigPath)
		fmt.Printf("total: wall %s, modeled %s\n",
			stats.FormatDuration(res.TotalWall), stats.FormatDuration(res.TotalModeled))
		reportQuality(*reference, res.Contigs)
		return
	}

	cfg := lasagna.DefaultConfig(*workspace)
	cfg.MinOverlap = *lmin
	cfg.GPU = spec
	cfg.HostBlockPairs = *hostBlock
	cfg.DeviceBlockPairs = *devBlock
	cfg.IncludeSingletons = *singletons
	cfg.VerifyOverlaps = *verify
	cfg.KeepIntermediate = *keepFiles
	cfg.DedupeReads = *dedupe
	cfg.PackedReads = *packed
	cfg.FullGraph = *fullGraph
	cfg.ParallelTraversal = *bsp
	cfg.Resume = *resume
	if *workers != 0 {
		cfg.Workers = *workers
	}
	res, err := lasagna.AssembleContext(ctx, cfg, reads)
	if err != nil {
		fatal(err)
	}
	reportResumed(res.CachedStages)
	fmt.Printf("single-node assembly on simulated %s\n", spec.Name)
	for _, ps := range res.Phases {
		fmt.Println("  " + ps.String())
	}
	fmt.Printf("reads: %d, partitions: %d, pairs: %d\n",
		res.NumReads, res.Partitions, res.PairsGenerated)
	fmt.Printf("edges: %d candidates, %d accepted", res.CandidateEdges, res.AcceptedEdges)
	if *verify {
		fmt.Printf(", %d false positives", res.FalsePositives)
	}
	fmt.Println()
	fmt.Printf("assembly: %s\n", res.ContigStats)
	fmt.Printf("contigs written to %s\n", res.ContigPath)
	fmt.Printf("total: wall %s, modeled %s\n",
		stats.FormatDuration(res.TotalWall), stats.FormatDuration(res.TotalModeled))
	reportQuality(*reference, res.Contigs)
}

// reportResumed notes which stages a -resume run served from the manifest.
func reportResumed(cached []string) {
	if len(cached) > 0 {
		fmt.Printf("resumed: %s served from the run manifest\n", strings.Join(cached, ", "))
	}
}

// reportQuality prints a reference-based assembly evaluation when a
// reference FASTA was supplied.
func reportQuality(refPath string, contigs []lasagna.Seq) {
	if refPath == "" {
		return
	}
	ref, _, err := fastq.ReadFile(refPath)
	if err != nil {
		fatal(err)
	}
	if ref.NumReads() == 0 {
		fatal(fmt.Errorf("reference %s holds no sequences", refPath))
	}
	genome := ref.Read(0)
	rep := quality.Evaluate(genome, contigs)
	fmt.Printf("quality vs %s: %s\n", refPath, rep)
}

func findGPU(name string) (lasagna.GPUSpec, bool) {
	for _, s := range lasagna.GPUs {
		if s.Name == name {
			return s, true
		}
	}
	return lasagna.GPUSpec{}, false
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "lasagna: %v\n", err)
	os.Exit(1)
}
