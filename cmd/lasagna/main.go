// Command lasagna assembles a FASTQ/FASTA short-read dataset into contigs
// using the LaSAGNA pipeline (map -> sort -> reduce -> compress) on a
// simulated GPU, or on a simulated multi-node GPU cluster with -nodes.
//
// Usage:
//
//	lasagna -in reads.fastq -workspace ./work -lmin 63
//	lasagna -in reads.fastq -workspace ./work -lmin 63 -nodes 8 -gpu K20X
//	lasagna -in a.fastq.gz,b.fastq.gz -workspace ./work -dedupe -fullgraph -reference genome.fasta
//	lasagna -in reads.fastq -workspace ./work -resume   # re-enter an interrupted run
//
// Observability (composes with every mode above, including -resume):
//
//	lasagna -in reads.fastq -workspace ./work -trace trace.json   # Perfetto-loadable span trace
//	lasagna -in reads.fastq -workspace ./work -debug-addr localhost:6060 -v
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/buildinfo"
	"repro/internal/costmodel"
	"repro/internal/fastq"
	"repro/internal/obs"
	"repro/internal/quality"
	"repro/internal/stats"
)

func main() {
	var (
		in         = flag.String("in", "", "comma-separated input FASTQ/FASTA files, .gz accepted (required)")
		workspace  = flag.String("workspace", "", "scratch/output directory (required)")
		lmin       = flag.Int("lmin", 63, "minimum overlap length")
		gpuName    = flag.String("gpu", "K40", "modeled GPU (K20X, K40, P40, P100, V100)")
		hostBlock  = flag.Int("host-block", 1<<20, "host block size m_h in pairs")
		devBlock   = flag.Int("device-block", 1<<16, "device block size m_d in pairs")
		nodes      = flag.Int("nodes", 1, "simulated cluster nodes (1 = single-node pipeline)")
		singletons = flag.Bool("singletons", false, "emit single-read contigs for unassembled reads")
		verify     = flag.Bool("verify", false, "verify candidate overlaps against sequences")
		keepFiles  = flag.Bool("keep-intermediate", false, "retain partition/sort files")
		dedupe     = flag.Bool("dedupe", false, "remove duplicate reads before assembly")
		packed     = flag.Bool("packed", false, "store bulk reads 2-bit packed in host memory")
		fullGraph  = flag.Bool("fullgraph", false, "full string graph with transitive reduction instead of greedy")
		backend    = flag.String("graph-backend", "", "reduce/compress engine: greedy (default), spmat (CSR sparse matrix with masked-SpGEMM transitive reduction), or succinct (compressed rank/select adjacency built in one pass from sorted edge runs)")
		bsp        = flag.Bool("parallel-traversal", false, "BSP pointer-jumping path traversal")
		byFp       = flag.Bool("partition-by-fingerprint", false, "distributed shuffle by fingerprint range (with -nodes)")
		workers    = flag.Int("workers", 0, "concurrent partition workers (0 = GOMAXPROCS, 1 = serial; output is identical)")
		streams    = flag.Bool("streams", true, "overlap async transfers with kernels on modeled streams (output is identical; modeled time only shrinks)")
		reference  = flag.String("reference", "", "optional reference FASTA for a quality report")
		resume     = flag.Bool("resume", false, "resume an interrupted run from the workspace's manifest")
		traceOut   = flag.String("trace", "", "write a Chrome trace-event JSON file (load in Perfetto or chrome://tracing)")
		debugAddr  = flag.String("debug-addr", "", "serve expvar, metrics, and pprof debug endpoints on this address (e.g. localhost:6060)")
		verbose    = flag.Bool("v", false, "verbose logging: debug-level stage, resume, and worker-pool events")
		quiet      = flag.Bool("quiet", false, "log errors only")
		logFormat  = flag.String("log-format", "text", "structured log format: text or json")
		version    = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("lasagna"))
		return
	}
	if *in == "" || *workspace == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *logFormat != "text" && *logFormat != "json" {
		fmt.Fprintf(os.Stderr, "lasagna: -log-format must be text or json, got %q\n", *logFormat)
		os.Exit(2)
	}
	spec, ok := findGPU(*gpuName)
	if !ok {
		fmt.Fprintf(os.Stderr, "lasagna: unknown GPU %q\n", *gpuName)
		os.Exit(2)
	}
	if err := os.MkdirAll(*workspace, 0o755); err != nil {
		fatal(err)
	}

	// Observability: the logger always exists (level gates the volume);
	// the tracer only when a trace file was requested; the metrics
	// registry whenever anything will read it (trace runs snapshot it into
	// the manifest, the debug endpoint serves it live).
	level := slog.LevelWarn
	switch {
	case *quiet:
		level = slog.LevelError
	case *verbose:
		level = slog.LevelDebug
	}
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer()
	}
	var registry *obs.Registry
	if *traceOut != "" || *debugAddr != "" {
		registry = obs.NewRegistry()
	}
	observer := obs.New(obs.NewLogger(os.Stderr, level, *logFormat == "json"), tracer, registry)
	if *debugAddr != "" {
		dbg, err := obs.NewDebugServer(*debugAddr, registry)
		if err != nil {
			fatal(err)
		}
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "lasagna: debug endpoint on http://%s/debug/ (vars, metrics, pprof)\n", dbg.Addr())
	}

	inputs := strings.Split(*in, ",")
	reads, err := fastq.ReadFiles(inputs...)
	if err != nil {
		fatal(err)
	}

	// SIGINT/SIGTERM cancel the pipeline between device batches; the
	// stages committed so far stay resumable with -resume.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *nodes > 1 {
		cfg := lasagna.DefaultClusterConfig(*workspace, *nodes)
		cfg.MinOverlap = *lmin
		cfg.GPU = spec
		cfg.HostBlockPairs = *hostBlock
		cfg.DeviceBlockPairs = *devBlock
		cfg.IncludeSingletons = *singletons
		cfg.PartitionByFingerprint = *byFp
		cfg.GraphBackend = *backend
		cfg.WorkersPerNode = *workers
		cfg.Streams = *streams
		cfg.Resume = *resume
		cfg.Obs = observer
		res, err := lasagna.AssembleDistributedContext(ctx, cfg, reads)
		writeTrace(tracer, *traceOut)
		if err != nil {
			fatal(err)
		}
		reportResumed(res.CachedStages)
		fmt.Printf("distributed assembly on %d simulated %s nodes\n", *nodes, spec.Name)
		for _, ps := range res.Phases {
			fmt.Println("  " + ps.String())
		}
		fmt.Printf("edges: %d candidates, %d accepted\n", res.CandidateEdges, res.AcceptedEdges)
		fmt.Printf("assembly: %s\n", res.ContigStats)
		fmt.Printf("contigs written to %s\n", res.ContigPath)
		fmt.Printf("total: wall %s, modeled %s\n",
			stats.FormatDuration(res.TotalWall), stats.FormatDuration(res.TotalModeled))
		reportModeled(res.Modeled)
		reportQuality(*reference, res.Contigs)
		return
	}

	cfg := lasagna.DefaultConfig(*workspace)
	cfg.MinOverlap = *lmin
	cfg.GPU = spec
	cfg.HostBlockPairs = *hostBlock
	cfg.DeviceBlockPairs = *devBlock
	cfg.IncludeSingletons = *singletons
	cfg.VerifyOverlaps = *verify
	cfg.KeepIntermediate = *keepFiles
	cfg.DedupeReads = *dedupe
	cfg.PackedReads = *packed
	cfg.FullGraph = *fullGraph
	cfg.GraphBackend = *backend
	cfg.ParallelTraversal = *bsp
	cfg.Streams = *streams
	cfg.Resume = *resume
	if *workers != 0 {
		cfg.Workers = *workers
	}
	cfg.Obs = observer
	res, err := lasagna.AssembleContext(ctx, cfg, reads)
	writeTrace(tracer, *traceOut)
	if err != nil {
		fatal(err)
	}
	reportResumed(res.CachedStages)
	fmt.Printf("single-node assembly on simulated %s\n", spec.Name)
	for _, ps := range res.Phases {
		fmt.Println("  " + ps.String())
	}
	fmt.Printf("reads: %d, partitions: %d, pairs: %d\n",
		res.NumReads, res.Partitions, res.PairsGenerated)
	fmt.Printf("edges: %d candidates, %d accepted", res.CandidateEdges, res.AcceptedEdges)
	if *verify {
		fmt.Printf(", %d false positives", res.FalsePositives)
	}
	fmt.Println()
	fmt.Printf("assembly: %s\n", res.ContigStats)
	fmt.Printf("contigs written to %s\n", res.ContigPath)
	fmt.Printf("total: wall %s, modeled %s\n",
		stats.FormatDuration(res.TotalWall), stats.FormatDuration(res.TotalModeled))
	if res.OverlapSaved > 0 {
		fmt.Printf("stream overlap hid %s of modeled time (%.0f%% of streamed work)\n",
			stats.FormatDuration(res.OverlapSaved), res.OverlapRatio*100)
	}
	reportModeled(res.Modeled)
	reportQuality(*reference, res.Contigs)
}

// writeTrace flushes the collected span trace (nil-safe, so observability
// off costs nothing). It runs even after a failed or interrupted run: a
// partial trace of the stages that did execute is exactly what a crash
// investigation wants.
func writeTrace(tracer *obs.Tracer, path string) {
	if tracer == nil || path == "" {
		return
	}
	if err := tracer.WriteFile(path); err != nil {
		fmt.Fprintf(os.Stderr, "lasagna: writing trace: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "lasagna: trace written to %s\n", path)
}

// reportModeled prints the per-tier modeled-time attribution from the
// run's final counter snapshot — the same costmodel.Breakdown arithmetic
// the trace spans carry.
func reportModeled(b costmodel.Breakdown) {
	sec := func(s float64) string {
		return stats.FormatDuration(time.Duration(s * float64(time.Second)))
	}
	fmt.Printf("modeled tiers: disk read %s, disk write %s, net %s, host mem %s, device mem %s, device ops %s, pcie %s\n",
		sec(b.DiskReadSec), sec(b.DiskWriteSec), sec(b.NetSec), sec(b.HostMemSec),
		sec(b.DeviceMemSec), sec(b.DeviceOpsSec), sec(b.PCIeSec))
}

// reportResumed notes which stages a -resume run served from the manifest.
func reportResumed(cached []string) {
	if len(cached) > 0 {
		fmt.Printf("resumed: %s served from the run manifest\n", strings.Join(cached, ", "))
	}
}

// reportQuality prints a reference-based assembly evaluation when a
// reference FASTA was supplied.
func reportQuality(refPath string, contigs []lasagna.Seq) {
	if refPath == "" {
		return
	}
	ref, _, err := fastq.ReadFile(refPath)
	if err != nil {
		fatal(err)
	}
	if ref.NumReads() == 0 {
		fatal(fmt.Errorf("reference %s holds no sequences", refPath))
	}
	genome := ref.Read(0)
	rep := quality.Evaluate(genome, contigs)
	fmt.Printf("quality vs %s: %s\n", refPath, rep)
}

func findGPU(name string) (lasagna.GPUSpec, bool) {
	for _, s := range lasagna.GPUs {
		if s.Name == name {
			return s, true
		}
	}
	return lasagna.GPUSpec{}, false
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "lasagna: %v\n", err)
	os.Exit(1)
}
