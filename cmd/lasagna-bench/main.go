// Command lasagna-bench regenerates every table and figure of the paper's
// evaluation (Section IV) on scaled synthetic datasets:
//
//	Table I    dataset inventory
//	Table II   phase times on the QB2-like machine (128GB+K40)
//	Table III  phase times on the SuperMic-like machine (64GB+K20)
//	Table IV   peak host/device memory per phase (QB2)
//	Table V    peak host/device memory per phase (SuperMic)
//	Table VI   SGA baseline vs LaSAGNA
//	Fig. 8     sort time vs host and device block-sizes
//	Fig. 9     sort time vs GPU model and host block-size
//	Fig. 10    distributed execution times for 1-8 nodes
//
// Usage:
//
//	lasagna-bench -exp all -scale 1.0 [-workspace dir]
//	lasagna-bench -exp table2,fig9 -scale 0.25
//
// Modeled times come from the analytic hardware model (bytes moved per
// tier divided by tier bandwidth); wall times are the CPU simulation's
// real clock. Shapes — which phase dominates, who wins, where crossovers
// fall — are the reproduction target, not absolute values.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/buildinfo"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "comma-separated experiments: table1..table6, fig8, fig9, fig10, or all")
		scale     = flag.Float64("scale", 1.0, "dataset scale factor (1.0 = default scaled profiles)")
		workspace = flag.String("workspace", "", "scratch directory (default: a temp dir)")
		version   = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("lasagna-bench"))
		return
	}

	ws := *workspace
	if ws == "" {
		dir, err := os.MkdirTemp("", "lasagna-bench-*")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(dir)
		ws = dir
	} else if err := os.MkdirAll(ws, 0o755); err != nil {
		fatal(err)
	}

	h := newHarness(ws, *scale)
	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	all := want["all"]

	type experiment struct {
		key string
		fn  func() error
	}
	experiments := []experiment{
		{"table1", h.table1},
		{"table2", h.table2},
		{"table3", h.table3},
		{"table4", h.table4},
		{"table5", h.table5},
		{"table6", h.table6},
		{"fig8", h.fig8},
		{"fig9", h.fig9},
		{"fig10", h.fig10},
	}
	ran := 0
	for _, e := range experiments {
		if !all && !want[e.key] {
			continue
		}
		ran++
		if err := e.fn(); err != nil {
			fatal(fmt.Errorf("%s: %w", e.key, err))
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiments matched %q\n", *exp)
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "lasagna-bench: %v\n", err)
	os.Exit(1)
}
