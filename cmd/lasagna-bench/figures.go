package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/dna"
	"repro/internal/extsort"
	"repro/internal/fastq"
	"repro/internal/gpu"
	"repro/internal/kvio"
	"repro/internal/stats"
)

func writeFastq(path string, rs *dna.ReadSet) error {
	return fastq.WriteFastqFile(path, rs)
}

// partitionFile materializes one H.Genome-like partition's tuple file:
// the workload of the paper's sorting studies ("data generated from
// H.Genome, about 2.5 billion pairs per partition", scaled down). It maps
// the dataset once, keeps the largest suffix partition, and caches it.
func (h *harness) partitionFile() (string, int64, error) {
	path := filepath.Join(h.workspace, "hgenome_partition.kv")
	if n, err := kvio.CountFile(path); err == nil && n > 0 {
		return path, n, nil
	}
	p := h.profiles[3] // H.Genome-like
	rs := h.reads(p)
	dir := filepath.Join(h.workspace, "partgen")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", 0, err
	}
	dev := gpu.NewDevice(gpu.K40, nil)
	sfxW := kvio.NewPartitionWriters(dir, kvio.Suffix, nil)
	pfxW := kvio.NewPartitionWriters(dir, kvio.Prefix, nil)
	mapper := core.NewMapper(dev, nil, p.MinOverlap, 4096, rs.MaxLen())
	fmt.Fprintf(os.Stderr, "[fig] generating H.Genome-like partition data ...\n")
	if err := mapper.MapRange(context.Background(), rs, 0, rs.NumReads(), sfxW, pfxW); err != nil {
		return "", 0, err
	}
	counts := sfxW.Counts()
	if err := sfxW.Close(); err != nil {
		return "", 0, err
	}
	if err := pfxW.Close(); err != nil {
		return "", 0, err
	}
	// Keep the largest partition, drop the rest.
	bestL, bestN := -1, int64(-1)
	for l, n := range counts {
		if n > bestN {
			bestL, bestN = l, n
		}
	}
	src := kvio.PartitionPath(dir, kvio.Suffix, bestL)
	if err := os.Rename(src, path); err != nil {
		return "", 0, err
	}
	if err := os.RemoveAll(dir); err != nil {
		return "", 0, err
	}
	return path, bestN, nil
}

// sortOnce sorts the partition file under the given block sizes and GPU,
// returning the per-tier modeled-time breakdown under the given disk
// bandwidths plus the modeled seconds hidden by stream overlap. Callers
// take Total() for the serial headline, Total()-saved for the overlapped
// figure, and read the tier fields directly for attribution — the shares
// are never recomputed from raw byte counts here.
func (h *harness) sortOnce(partPath string, mh, md int, card gpu.Spec,
	diskRead, diskWrite float64) (costmodel.Breakdown, float64, extsort.Stats, error) {
	meter := costmodel.NewMeter()
	dev := gpu.NewDevice(card, meter)
	dir, err := os.MkdirTemp(h.workspace, "sort-*")
	if err != nil {
		return costmodel.Breakdown{}, 0, extsort.Stats{}, err
	}
	defer os.RemoveAll(dir)
	prof := card.CostProfile(diskRead, diskWrite)
	lg := costmodel.NewOverlapLedger(prof)
	cfg := extsort.Config{
		Device:           dev,
		Meter:            meter,
		HostBlockPairs:   mh,
		DeviceBlockPairs: md,
		TempDir:          dir,
		Overlap:          lg,
	}
	out := filepath.Join(dir, "sorted.kv")
	st, err := extsort.SortFile(context.Background(), cfg, partPath, out)
	if err != nil {
		return costmodel.Breakdown{}, 0, st, err
	}
	return meter.Snapshot().Breakdown(prof), lg.SavedSeconds(), st, nil
}

// fig8 sweeps host and device block-sizes on a K40 (Fig. 8: the host
// block-size dominates because it sets the disk pass count).
func (h *harness) fig8() error {
	partPath, n, err := h.partitionFile()
	if err != nil {
		return err
	}
	fmt.Printf("\nFig. 8: sort time per partition (%s pairs) vs block sizes on K40\n",
		stats.FormatCount(n))
	hostFracs := []int{16, 8, 4, 2, 1} // m_h = n/frac
	devFracs := []int{256, 128, 64, 32}
	fmt.Printf("%-14s", "dev \\ host")
	for _, hf := range hostFracs {
		fmt.Printf(" %11s", fmt.Sprintf("n/%d", hf))
	}
	fmt.Println()
	for _, df := range devFracs {
		md := int(n) / df
		if md < 2 {
			md = 2
		}
		fmt.Printf("%-14s", fmt.Sprintf("m_d=n/%d", df))
		for _, hf := range hostFracs {
			mh := int(n) / hf
			if mh < md {
				mh = md
			}
			bd, saved, st, err := h.sortOnce(partPath, mh, md, gpu.K40,
				costmodel.DefaultDisk.ReadBps, costmodel.DefaultDisk.WriteBps)
			if err != nil {
				return err
			}
			fmt.Printf(" %8.3fs/%d", bd.Total()-saved, st.DiskPasses)
		}
		fmt.Println()
	}
	fmt.Println("(overlapped modeled seconds / disk passes; larger host blocks cut passes, device blocks are secondary)")
	return nil
}

// fig9 fixes the device block and sweeps host block-sizes per GPU card
// (Fig. 9: ranking follows memory bandwidth and converges as the sort
// becomes I/O bound).
func (h *harness) fig9() error {
	partPath, n, err := h.partitionFile()
	if err != nil {
		return err
	}
	md := int(n) / 128 // mirrors the paper's fixed 20M of 2.56B pairs
	if md < 2 {
		md = 2
	}
	fmt.Printf("\nFig. 9: sort time per partition (%s pairs) vs GPU, fixed m_d=n/128, SSD scratch (PSG)\n",
		stats.FormatCount(n))
	cards := []gpu.Spec{gpu.K40, gpu.P40, gpu.P100, gpu.V100}
	hostFracs := []int{16, 8, 4, 2, 1}
	fmt.Printf("%-8s", "GPU")
	for _, hf := range hostFracs {
		fmt.Printf(" %11s", fmt.Sprintf("n/%d", hf))
	}
	fmt.Println()
	for _, card := range cards {
		fmt.Printf("%-8s", card.Name)
		var last costmodel.Breakdown
		for _, hf := range hostFracs {
			mh := int(n) / hf
			if mh < md {
				mh = md
			}
			bd, saved, _, err := h.sortOnce(partPath, mh, md, card,
				costmodel.SSDDisk.ReadBps, costmodel.SSDDisk.WriteBps)
			if err != nil {
				return err
			}
			fmt.Printf(" %10.3fs", bd.Total()-saved)
			last = bd
		}
		// The convergence claim made quantitative: at the largest host
		// block, how much of the modeled time is disk I/O vs the GPU.
		ioSec := last.DiskReadSec + last.DiskWriteSec
		devSec := last.DeviceMemSec + last.DeviceOpsSec + last.PCIeSec
		fmt.Printf("  (n/1: disk %4.0f%%, device %4.0f%%)\n",
			100*ioSec/last.Total(), 100*devSec/last.Total())
	}
	fmt.Println("(overlapped modeled seconds; V100 < P100 < P40 < K40 at large host blocks, converging when I/O bound)")
	return nil
}

// fig10 runs the H.Genome-like dataset on 1-8 simulated SuperMic nodes
// (Fig. 10: map/sort scale with nodes, shuffle appears beyond one node,
// reduce is limited by the serialized graph building).
func (h *harness) fig10() error {
	p := h.profiles[3]
	rs := h.reads(p)
	fmt.Printf("\nFig. 10: distributed execution of %s on SuperMic-like nodes (modeled)\n", p.Name)
	phases := []core.PhaseName{core.PhaseMap, cluster.PhaseShuffle, core.PhaseSort,
		core.PhaseReduce, core.PhaseCompress}
	fmt.Printf("%-6s", "Nodes")
	for _, ph := range phases {
		fmt.Printf(" %10s", ph)
	}
	fmt.Printf(" %10s\n", "Total")
	for _, nodes := range []int{1, 2, 4, 8} {
		dir := filepath.Join(h.workspace, fmt.Sprintf("fig10_n%d", nodes))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		cfg := cluster.DefaultConfig(dir, nodes)
		cfg.MinOverlap = p.MinOverlap
		cfg.HostBlockPairs = scaleBlock(supermic.hostBlockPairs, h.scale)
		cfg.DeviceBlockPairs = scaleBlock(supermic.devBlockPairs, h.scale)
		cfg.GPU = supermic.gpu
		fmt.Fprintf(os.Stderr, "[fig10] %d nodes ...\n", nodes)
		cl, err := cluster.New(cfg)
		if err != nil {
			return err
		}
		res, err := cl.Assemble(rs)
		if err != nil {
			return err
		}
		fmt.Printf("%-6d", nodes)
		for _, ph := range phases {
			ps, _ := res.PhaseByName(ph)
			fmt.Printf(" %9.3fs", ps.Modeled.Seconds())
		}
		fmt.Printf(" %9.3fs", res.TotalModeled.Seconds())
		if nodes == 1 && res.ReduceSerialModeled > 0 {
			fmt.Printf("   [t_o=%.3fs t_g=%.3fs -> n_max=t_o/t_g=%.0f]",
				res.ReduceOverlapModeled.Seconds(), res.ReduceSerialModeled.Seconds(),
				res.ReduceOverlapModeled.Seconds()/res.ReduceSerialModeled.Seconds())
		}
		fmt.Println()
		if err := os.RemoveAll(dir); err != nil {
			return err
		}
	}
	fmt.Println("(shuffle cost appears when scaling beyond one node; reduce scalability is bounded by n_max = t_o/t_g)")
	return nil
}
