package main

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/debruijn"
	"repro/internal/dna"
	"repro/internal/readsim"
	"repro/internal/sga"
	"repro/internal/stats"
)

// harness caches dataset generation and pipeline runs across experiments
// (Tables II and IV share the QB2 runs; III and V share SuperMic).
type harness struct {
	workspace string
	scale     float64
	profiles  []readsim.Profile
	readsets  map[string]*dna.ReadSet
	runs      map[string]*core.Result
	sgaRuns   map[string]*sga.Result
	sgaOOM    map[string]bool
}

func newHarness(workspace string, scale float64) *harness {
	h := &harness{
		workspace: workspace,
		scale:     scale,
		readsets:  map[string]*dna.ReadSet{},
		runs:      map[string]*core.Result{},
		sgaRuns:   map[string]*sga.Result{},
		sgaOOM:    map[string]bool{},
	}
	for _, p := range readsim.Profiles {
		h.profiles = append(h.profiles, p.Scaled(scale))
	}
	return h
}

func (h *harness) reads(p readsim.Profile) *dna.ReadSet {
	if rs, ok := h.readsets[p.Name]; ok {
		return rs
	}
	_, rs := p.Generate()
	h.readsets[p.Name] = rs
	return rs
}

// run executes (or returns the cached) pipeline run for dataset x machine.
func (h *harness) run(p readsim.Profile, m machine) (*core.Result, error) {
	key := p.Name + "|" + m.name
	if res, ok := h.runs[key]; ok {
		return res, nil
	}
	dir := filepath.Join(h.workspace, sanitize(key))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	cfg := m.config(dir, p.MinOverlap, h.scale)
	pipe, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	// Write the dataset once so the Load phase reads a real file, like
	// the paper's pipeline does.
	input := filepath.Join(dir, "reads.fastq")
	if _, err := os.Stat(input); err != nil {
		if err := writeFastq(input, h.reads(p)); err != nil {
			return nil, err
		}
	}
	fmt.Fprintf(os.Stderr, "[run] %s on %s ...\n", p.Name, m.name)
	res, err := pipe.AssembleFile(input)
	if err != nil {
		return nil, err
	}
	h.runs[key] = res
	return res, nil
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// --- Table I ---------------------------------------------------------

func (h *harness) table1() error {
	fmt.Printf("\nTable I: scaled datasets (scale %.3g; paper ratios 1 : 7.4 : 20 : 27.4)\n", h.scale)
	fmt.Printf("%-11s %7s %10s %14s %10s %6s\n", "Dataset", "Length", "Reads", "Bases", "FASTQ", "lmin")
	base := int64(0)
	for i, p := range h.profiles {
		rs := h.reads(p)
		fastqBytes := rs.TotalBases()*2 + int64(rs.NumReads())*14
		if i == 0 {
			base = rs.TotalBases()
		}
		fmt.Printf("%-11s %7d %10s %14s %10s %6d   (%.1fx)\n",
			p.Name, p.ReadLen, stats.FormatCount(int64(rs.NumReads())),
			stats.FormatCount(rs.TotalBases()), stats.FormatBytes(fastqBytes),
			p.MinOverlap, float64(rs.TotalBases())/float64(base))
	}
	return nil
}

// --- Tables II and III ------------------------------------------------

var phaseRows = []core.PhaseName{core.PhaseMap, core.PhaseSort, core.PhaseReduce,
	core.PhaseCompress, core.PhaseLoad}

func (h *harness) phaseTable(title string, m machine) error {
	fmt.Printf("\n%s\n", title)
	fmt.Printf("%-9s", "")
	for _, p := range h.profiles {
		fmt.Printf(" %22s", p.Name)
	}
	fmt.Println()
	results := make([]*core.Result, len(h.profiles))
	for i, p := range h.profiles {
		res, err := h.run(p, m)
		if err != nil {
			return err
		}
		results[i] = res
	}
	for _, row := range phaseRows {
		fmt.Printf("%-9s", row)
		for _, res := range results {
			ps, _ := res.PhaseByName(row)
			fmt.Printf(" %12s/%9s", stats.FormatDuration(ps.Modeled), stats.FormatDuration(ps.Wall))
		}
		fmt.Println()
	}
	fmt.Printf("%-9s", "Total")
	for _, res := range results {
		fmt.Printf(" %12s/%9s", stats.FormatDuration(res.TotalModeled), stats.FormatDuration(res.TotalWall))
	}
	fmt.Println("\n(values are modeled/wall)")
	return nil
}

func (h *harness) table2() error {
	return h.phaseTable(fmt.Sprintf("Table II: assembly times on %s", qb2.name), qb2)
}

func (h *harness) table3() error {
	return h.phaseTable(fmt.Sprintf("Table III: assembly times on %s", supermic.name), supermic)
}

// --- Tables IV and V --------------------------------------------------

func (h *harness) memoryTable(title string, m machine) error {
	fmt.Printf("\n%s\n", title)
	fmt.Printf("%-11s | %10s %10s %10s %10s | %10s %10s %10s\n",
		"Dataset", "Map(h)", "Sort(h)", "Red.(h)", "Contig(h)", "Map(d)", "Sort(d)", "Red.(d)")
	for _, p := range h.profiles {
		res, err := h.run(p, m)
		if err != nil {
			return err
		}
		get := func(name core.PhaseName) (int64, int64) {
			ps, _ := res.PhaseByName(name)
			return ps.PeakHost, ps.PeakDevice
		}
		mh, md := get(core.PhaseMap)
		sh, sd := get(core.PhaseSort)
		rh, rd := get(core.PhaseReduce)
		ch, _ := get(core.PhaseCompress)
		fmt.Printf("%-11s | %10s %10s %10s %10s | %10s %10s %10s\n",
			p.Name,
			stats.FormatBytes(mh), stats.FormatBytes(sh), stats.FormatBytes(rh), stats.FormatBytes(ch),
			stats.FormatBytes(md), stats.FormatBytes(sd), stats.FormatBytes(rd))
	}
	fmt.Println("(h = peak host memory, d = peak device memory)")
	return nil
}

func (h *harness) table4() error {
	return h.memoryTable(fmt.Sprintf("Table IV: peak memory on %s", qb2.name), qb2)
}

func (h *harness) table5() error {
	return h.memoryTable(fmt.Sprintf("Table V: peak memory on %s", supermic.name), supermic)
}

// --- Table VI ---------------------------------------------------------

// sgaRun executes (or returns the cached) baseline run, honouring the
// machine's host-memory budget the way the paper reports SGA going
// out-of-memory on H.Genome with 64 GB.
func (h *harness) sgaRun(p readsim.Profile, m machine) (*sga.Result, bool, error) {
	rs := h.reads(p)
	if sga.EstimateIndexBytes(rs) > m.hostBudgetBytes {
		h.sgaOOM[p.Name+"|"+m.name] = true
		return nil, true, nil
	}
	if res, ok := h.sgaRuns[p.Name]; ok {
		return res, false, nil
	}
	fmt.Fprintf(os.Stderr, "[sga] %s ...\n", p.Name)
	a, err := sga.NewAssembler(sga.Config{MinOverlap: p.MinOverlap, BreakCycles: true})
	if err != nil {
		return nil, false, err
	}
	edges, res := a.Overlaps(rs)
	_ = edges
	h.sgaRuns[p.Name] = res
	return res, false, nil
}

func (h *harness) table6() error {
	fmt.Printf("\nTable VI: SGA baseline vs LaSAGNA (index+overlap vs map+sort+reduce)\n")
	fmt.Printf("%-11s %24s %24s %12s %12s\n",
		"Dataset", "SGA 64GB / 128GB", "LaSAGNA 64GB / 128GB", "wall ratio", "GPU-model")
	for _, p := range h.profiles {
		var sgaT [2]string
		var sgaWall time.Duration
		var oomAll = true
		for i, m := range []machine{supermic, qb2} {
			res, oom, err := h.sgaRun(p, m)
			if err != nil {
				return err
			}
			if oom {
				sgaT[i] = "OOM"
				continue
			}
			oomAll = false
			sgaT[i] = stats.FormatDuration(res.TotalTime)
			sgaWall = res.TotalTime
		}
		var lasT [2]string
		var lasWall, lasModeled time.Duration
		for i, m := range []machine{supermic, qb2} {
			res, err := h.run(p, m)
			if err != nil {
				return err
			}
			// Comparable work: map + sort + reduce (the paper excludes
			// SGA's error-correction and our compress/load likewise).
			var wall, modeled time.Duration
			for _, name := range []core.PhaseName{core.PhaseMap, core.PhaseSort, core.PhaseReduce} {
				ps, _ := res.PhaseByName(name)
				wall += ps.Wall
				modeled += ps.Modeled
			}
			lasT[i] = stats.FormatDuration(wall)
			lasWall, lasModeled = wall, modeled
		}
		ratio := "-"
		gpuRatio := "-"
		if !oomAll && lasWall > 0 {
			ratio = fmt.Sprintf("%.2fx", sgaWall.Seconds()/lasWall.Seconds())
			gpuRatio = fmt.Sprintf("%.2fx", sgaWall.Seconds()/lasModeled.Seconds())
		}
		fmt.Printf("%-11s %11s / %10s %11s / %10s %12s %12s\n",
			p.Name, sgaT[0], sgaT[1], lasT[0], lasT[1], ratio, gpuRatio)
	}
	fmt.Println("(wall ratio = SGA wall / LaSAGNA wall on this CPU; GPU-model = SGA wall / LaSAGNA modeled K20 time)")

	// The paper excludes de Bruijn assemblers from Table VI because they
	// hold the whole k-mer structure in memory and fail on large inputs.
	// Reproduce the structural contrast: resident de Bruijn memory grows
	// with the dataset, LaSAGNA's sort working set is block-bounded.
	fmt.Printf("\nde Bruijn baseline (k=25): resident k-mer memory vs LaSAGNA's block-bounded sort buffers (%s)\n",
		supermic.name)
	lasagnaBuffers := int64(2*scaleBlock(supermic.hostBlockPairs, h.scale)) * 24
	for _, p := range h.profiles {
		rs := h.reads(p)
		g, err := debruijn.Build(debruijn.Config{K: 25, MinCount: 1}, rs)
		if err != nil {
			return err
		}
		fmt.Printf("%-11s dBG resident: %10s   LaSAGNA sort buffers: %10s (fixed)\n",
			p.Name, stats.FormatBytes(g.ApproxBytes()), stats.FormatBytes(lasagnaBuffers))
	}
	fmt.Println("(the de Bruijn structure must stay resident and grows with the dataset — the")
	fmt.Println(" paper's stated reason for excluding dBG assemblers, which went OOM on Table VI)")
	return nil
}
