package main

import (
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/gpu"
)

// machine is a scaled stand-in for one of the paper's testbeds. Block
// sizes are scaled so the same qualitative regime holds as in the paper:
// on QB2 (128 GB host) the largest partition of the H.Genome-like dataset
// sorts in a single disk pass, while on SuperMic (64 GB host) it needs one
// extra merge pass — exactly the effect the paper calls out when
// explaining why only H.Genome slows down on the smaller machine.
type machine struct {
	name string
	gpu  gpu.Spec
	// hostBlockPairs is m_h; at profile scale 1.0 the largest partition
	// holds ~250k pairs.
	hostBlockPairs int
	devBlockPairs  int
	// hostBudgetBytes emulates total host memory for the SGA baseline's
	// out-of-memory behaviour (Table VI).
	hostBudgetBytes int64
}

var (
	// qb2 models a QueenBee II node: 128 GB host + K40 (12 GB).
	qb2 = machine{
		name:            "QB2 (128GB+K40)",
		gpu:             gpu.K40,
		hostBlockPairs:  1 << 18, // 262,144: largest partition in one pass
		devBlockPairs:   1 << 15,
		hostBudgetBytes: 400 << 20,
	}
	// supermic models a SuperMic node: 64 GB host + K20X (6 GB).
	supermic = machine{
		name:            "SuperMic (64GB+K20)",
		gpu:             gpu.K20X,
		hostBlockPairs:  1 << 17, // 131,072: largest partition needs a merge pass
		devBlockPairs:   1 << 14,
		hostBudgetBytes: 200 << 20,
	}
)

// config builds a pipeline configuration for this machine, scaling block
// sizes with the dataset scale so the pass-count regimes are preserved at
// reduced scale.
func (m machine) config(workspace string, lmin int, scale float64) core.Config {
	cfg := core.DefaultConfig(workspace)
	cfg.MinOverlap = lmin
	cfg.GPU = m.gpu
	cfg.HostBlockPairs = scaleBlock(m.hostBlockPairs, scale)
	cfg.DeviceBlockPairs = scaleBlock(m.devBlockPairs, scale)
	cfg.BreakCycles = true
	return cfg
}

func (m machine) profile() costmodel.Profile {
	return m.gpu.CostProfile(costmodel.DefaultDisk.ReadBps, costmodel.DefaultDisk.WriteBps)
}

func scaleBlock(pairs int, scale float64) int {
	v := int(float64(pairs) * scale)
	if v < 64 {
		v = 64
	}
	return v
}
