package lasagna

import (
	"testing"
	"testing/quick"

	"repro/internal/dna"
	"repro/internal/readsim"
)

// TestPropertyPipelineMatchesBruteForce checks the whole fingerprint
// pipeline (map, sort, reduce) against a quadratic brute-force overlap
// scan on small random datasets: the candidate edge multiset must be
// exactly the set of true suffix-prefix overlaps — no misses and, with
// 128-bit fingerprints, no false positives.
func TestPropertyPipelineMatchesBruteForce(t *testing.T) {
	type edge struct {
		u, v uint32
		l    uint16
	}
	f := func(seed int64, sz uint8) bool {
		genomeLen := 300 + int(sz)*4
		genome := readsim.Genome(readsim.GenomeParams{Length: genomeLen, Seed: seed})
		reads := readsim.Simulate(genome, readsim.ReadParams{
			ReadLen: 30, Coverage: 4, Seed: seed + 1,
		})
		lmin := 15

		// Brute force.
		want := map[edge]bool{}
		nv := uint32(reads.NumVertices())
		seqs := make([]dna.Seq, nv)
		for v := uint32(0); v < nv; v++ {
			seqs[v] = reads.VertexSeq(v)
		}
		for u := uint32(0); u < nv; u++ {
			for v := uint32(0); v < nv; v++ {
				if u == v {
					continue
				}
				for l := lmin; l < len(seqs[u]) && l < len(seqs[v]); l++ {
					if seqs[u][len(seqs[u])-l:].Equal(seqs[v][:l]) {
						want[edge{u, v, uint16(l)}] = true
					}
				}
			}
		}

		// Pipeline: capture candidates via a verifying config with the
		// graph discarded; CandidateEdges counts every emission, and with
		// VerifyOverlaps every false positive would be counted.
		dir := t.TempDir()
		cfg := DefaultConfig(dir)
		cfg.MinOverlap = lmin
		cfg.HostBlockPairs = 1 << 12
		cfg.DeviceBlockPairs = 1 << 9
		cfg.MapBatchReads = 64
		cfg.VerifyOverlaps = true
		res, err := Assemble(cfg, reads)
		if err != nil {
			t.Log(err)
			return false
		}
		if res.FalsePositives != 0 {
			t.Logf("seed %d: %d false positives", seed, res.FalsePositives)
			return false
		}
		if res.CandidateEdges != int64(len(want)) {
			t.Logf("seed %d: pipeline found %d candidates, brute force %d",
				seed, res.CandidateEdges, len(want))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// TestPropertyContigsAlwaysSubstrings asserts the pipeline's core safety
// property across random configurations: error-free input never produces
// a contig that is not an exact genome substring, regardless of graph
// mode, traversal mode, or packing.
func TestPropertyContigsAlwaysSubstrings(t *testing.T) {
	f := func(seed int64, fullGraph, packed, bsp, dedupe bool) bool {
		genome := readsim.Genome(readsim.GenomeParams{Length: 1200, Seed: seed})
		reads := readsim.Simulate(genome, readsim.ReadParams{
			ReadLen: 40, Coverage: 8, Seed: seed + 1,
		})
		cfg := DefaultConfig(t.TempDir())
		cfg.MinOverlap = 22
		cfg.HostBlockPairs = 1 << 12
		cfg.DeviceBlockPairs = 1 << 9
		cfg.MapBatchReads = 128
		cfg.FullGraph = fullGraph
		cfg.PackedReads = packed && !dedupe || packed // packed composes with dedupe
		cfg.DedupeReads = dedupe
		cfg.ParallelTraversal = bsp && !fullGraph
		res, err := Assemble(cfg, reads)
		if err != nil {
			t.Log(err)
			return false
		}
		gs := genome.String()
		grc := genome.ReverseComplement().String()
		for _, c := range res.Contigs {
			s := c.String()
			if !containsStr(gs, s) && !containsStr(grc, s) {
				t.Logf("seed %d (full=%v packed=%v bsp=%v dedupe=%v): bad contig",
					seed, fullGraph, packed, bsp, dedupe)
				return false
			}
		}
		return len(res.Contigs) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func containsStr(haystack, needle string) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if haystack[i:i+len(needle)] == needle {
			return true
		}
	}
	return false
}
