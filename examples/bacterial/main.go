// Bacterial assembly scenario: assemble a repeat-rich bacterial-scale
// genome at several minimum-overlap settings and compare assembly
// contiguity against the exact FM-index baseline.
//
// This mirrors the workload the paper's introduction motivates (de novo
// assembly of Illumina short reads) at a laptop-friendly scale, and shows
// the l_min quality trade-off that the paper inherits from SGA's
// suggested settings: too small fragments the graph with spurious repeat
// overlaps, too large discards true overlaps.
//
// Run with:
//
//	go run ./examples/bacterial
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/readsim"
)

func main() {
	// A "mini-bacterium": 60 kb with planted repeats, sequenced at 25x
	// with 100 bp error-free reads.
	genome := readsim.Genome(readsim.GenomeParams{
		Length:      60_000,
		RepeatLen:   400,
		RepeatCount: 6,
		Seed:        2024,
	})
	reads := readsim.Simulate(genome, readsim.ReadParams{
		ReadLen:  100,
		Coverage: 25,
		Seed:     2025,
	})
	fmt.Printf("mini-bacterium: %d bp genome with repeats, %d reads at 25x\n\n",
		len(genome), reads.NumReads())

	fmt.Printf("%-6s | %8s %10s %8s %10s | %s\n",
		"lmin", "contigs", "N50", "max", "edges", "baseline N50 (exact FM-index)")
	for _, lmin := range []int{51, 63, 75, 85} {
		workspace, err := os.MkdirTemp("", "lasagna-bact-*")
		if err != nil {
			log.Fatal(err)
		}
		cfg := lasagna.DefaultConfig(workspace)
		cfg.MinOverlap = lmin
		cfg.HostBlockPairs = 1 << 17
		cfg.DeviceBlockPairs = 1 << 13
		res, err := lasagna.Assemble(cfg, reads)
		if err != nil {
			log.Fatal(err)
		}

		bres, err := lasagna.AssembleBaseline(lasagna.BaselineConfig{
			MinOverlap:  lmin,
			BreakCycles: true,
		}, reads)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6d | %8d %10d %8d %10d | N50 %d (%d contigs)\n",
			lmin, res.ContigStats.NumContigs, res.ContigStats.N50,
			res.ContigStats.MaxLen, res.AcceptedEdges,
			bres.ContigStats.N50, bres.ContigStats.NumContigs)
		os.RemoveAll(workspace)
	}

	fmt.Println("\nLaSAGNA's fingerprint overlaps and the exact baseline agree on every")
	fmt.Println("setting because 128-bit fingerprints produce no collisions at this scale.")
}
