// Distributed assembly scenario: assemble one dataset on simulated GPU
// clusters of 1, 2, 4, and 8 nodes and report the modeled per-phase
// scaling — the experiment behind Fig. 10 of the paper.
//
// The parallel phases (map, sort) shrink with the node count because each
// node's disks carry 1/n of the traffic; the all-to-all shuffle appears
// as soon as there is more than one node; and the reduce phase scales
// poorly because greedy graph building is serialized by the out-degree
// bit-vector token (the paper's t_o*p/n + t_g*p bound).
//
// Run with:
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	profile := lasagna.Datasets[3].Scaled(0.25) // H.Genome-like, reduced
	_, reads := lasagna.GenerateDataset(profile)
	fmt.Printf("dataset %s: %d reads of %d bp, lmin %d\n\n",
		profile.Name, reads.NumReads(), profile.ReadLen, profile.MinOverlap)

	fmt.Printf("%-6s %10s %10s %10s %10s %10s %12s\n",
		"Nodes", "Map", "Shuffle", "Sort", "Reduce", "Compress", "Total(model)")
	var oneNode float64
	for _, nodes := range []int{1, 2, 4, 8} {
		workspace, err := os.MkdirTemp("", "lasagna-dist-*")
		if err != nil {
			log.Fatal(err)
		}
		cfg := lasagna.DefaultClusterConfig(workspace, nodes)
		cfg.MinOverlap = profile.MinOverlap
		cfg.HostBlockPairs = 1 << 15
		cfg.DeviceBlockPairs = 1 << 12
		cfg.GPU = lasagna.K20X

		res, err := lasagna.AssembleDistributed(cfg, reads)
		if err != nil {
			log.Fatal(err)
		}
		get := func(name string) float64 {
			for _, ps := range res.Phases {
				if ps.Name == name {
					return ps.Modeled.Seconds()
				}
			}
			return 0
		}
		total := res.TotalModeled.Seconds()
		if nodes == 1 {
			oneNode = total
		}
		fmt.Printf("%-6d %9.3fs %9.3fs %9.3fs %9.3fs %9.3fs %11.3fs (%.2fx)\n",
			nodes, get("Map"), get("Shuffle"), get("Sort"), get("Reduce"),
			get("Compress"), total, oneNode/total)
		os.RemoveAll(workspace)
	}

	fmt.Println("\nEvery cluster size produces bit-identical contigs to the single-node")
	fmt.Println("pipeline; only the time distribution changes.")
}
