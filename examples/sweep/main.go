// Block-size sweep scenario: study how the host (m_h) and device (m_d)
// block sizes of the two-level hybrid sort drive disk passes and modeled
// time — the experiment behind Fig. 8, usable as a tuning aid for any
// dataset.
//
// Run with:
//
//	go run ./examples/sweep
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/extsort"
	"repro/internal/gpu"
	"repro/internal/kvio"
	"repro/internal/readsim"
)

func main() {
	workspace, err := os.MkdirTemp("", "lasagna-sweep-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(workspace)

	// Build one real partition's worth of fingerprint tuples by running
	// the map phase on a Bumblebee-like dataset.
	profile := readsim.Bumblebee.Scaled(0.5)
	_, reads := profile.Generate()
	dev := gpu.NewDevice(gpu.K40, nil)
	sfxW := kvio.NewPartitionWriters(workspace, kvio.Suffix, nil)
	pfxW := kvio.NewPartitionWriters(workspace, kvio.Prefix, nil)
	mapper := core.NewMapper(dev, nil, profile.MinOverlap, 2048, reads.MaxLen())
	if err := mapper.MapRange(context.Background(), reads, 0, reads.NumReads(), sfxW, pfxW); err != nil {
		log.Fatal(err)
	}
	counts := sfxW.Counts()
	if err := sfxW.Close(); err != nil {
		log.Fatal(err)
	}
	if err := pfxW.Close(); err != nil {
		log.Fatal(err)
	}
	largest, n := -1, int64(-1)
	for l, c := range counts {
		if c > n {
			largest, n = l, c
		}
	}
	part := kvio.PartitionPath(workspace, kvio.Suffix, largest)
	fmt.Printf("sweeping the sort of partition l=%d (%d pairs) from %s\n\n",
		largest, n, profile.Name)

	fmt.Printf("%-12s %-12s %8s %8s %12s %14s\n",
		"host m_h", "device m_d", "runs", "passes", "disk moved", "modeled time")
	for _, mhFrac := range []int{8, 4, 2, 1} {
		for _, mdFrac := range []int{64, 16} {
			mh := int(n) / mhFrac
			md := int(n) / mdFrac
			if md < 2 {
				md = 2
			}
			if mh < md {
				mh = md
			}
			meter := costmodel.NewMeter()
			d := gpu.NewDevice(gpu.K40, meter)
			tmp, err := os.MkdirTemp(workspace, "s-*")
			if err != nil {
				log.Fatal(err)
			}
			st, err := extsort.SortFile(context.Background(), extsort.Config{
				Device:           d,
				Meter:            meter,
				HostBlockPairs:   mh,
				DeviceBlockPairs: md,
				TempDir:          tmp,
			}, part, filepath.Join(tmp, "out.kv"))
			if err != nil {
				log.Fatal(err)
			}
			c := meter.Snapshot()
			modeled := c.Time(gpu.K40.CostProfile(
				costmodel.DefaultDisk.ReadBps, costmodel.DefaultDisk.WriteBps))
			fmt.Printf("n/%-10d n/%-10d %8d %8d %10.1fMB %14s\n",
				mhFrac, mdFrac, st.Runs, st.DiskPasses,
				float64(c.DiskReadBytes+c.DiskWriteBytes)/1e6, modeled)
			os.RemoveAll(tmp)
		}
	}
	fmt.Println("\nDoubling m_h removes a whole disk pass; m_d only trims device merge")
	fmt.Println("rounds, which the disk time dwarfs — the paper's Fig. 8 conclusion.")
}
