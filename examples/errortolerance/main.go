// Error-tolerance scenario: study how sequencing errors degrade an
// exact-overlap assembler.
//
// LaSAGNA finds overlaps by exact fingerprint matches (the paper's
// datasets are real Illumina reads, and it relies on coverage to ride
// over errors rather than correcting them — unlike SGA's full pipeline,
// whose error-correction stage the paper excludes from the comparison).
// A single substitution in a read kills every overlap that spans it, so
// assembly contiguity decays quickly with the error rate, and higher
// coverage buys some of it back. This example quantifies that with the
// reference-based quality report.
//
// Run with:
//
//	go run ./examples/errortolerance
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/quality"
	"repro/internal/readsim"
)

func main() {
	genome := readsim.Genome(readsim.GenomeParams{Length: 30_000, Seed: 99})
	fmt.Printf("reference: %d bp; reads: 80 bp, lmin 45\n\n", len(genome))

	fmt.Printf("%-8s %-8s %-7s | %8s %8s %10s %10s %9s %7s\n",
		"error", "cover", "dedupe", "contigs", "N50", "exact", "misasm", "genome%", "dups")
	for _, cov := range []float64{15, 30} {
		for _, errRate := range []float64{0, 0.002, 0.01, 0.02} {
			reads := readsim.Simulate(genome, readsim.ReadParams{
				ReadLen:   80,
				Coverage:  cov,
				ErrorRate: errRate,
				Seed:      100,
			})
			for _, dedupe := range []bool{false, true} {
				workspace, err := os.MkdirTemp("", "lasagna-err-*")
				if err != nil {
					log.Fatal(err)
				}
				cfg := lasagna.DefaultConfig(workspace)
				cfg.MinOverlap = 45
				cfg.HostBlockPairs = 1 << 16
				cfg.DeviceBlockPairs = 1 << 12
				cfg.DedupeReads = dedupe
				res, err := lasagna.Assemble(cfg, reads)
				if err != nil {
					log.Fatal(err)
				}
				rep := quality.Evaluate(genome, res.Contigs)
				fmt.Printf("%-8.3f %-8.0f %-7v | %8d %8d %10d %10d %8.1f%% %7d\n",
					errRate, cov, dedupe, rep.NumContigs, rep.N50,
					rep.ExactContigs, rep.MisassembledContigs,
					100*rep.CoverageFraction(), res.DuplicatesRemoved)
				os.RemoveAll(workspace)
			}
		}
	}
	fmt.Println("\nTwo effects are visible. Errors kill exact overlaps, so contiguity and")
	fmt.Println("genome coverage fall sharply with the error rate. And without dedupe,")
	fmt.Println("raising coverage *lowers* N50 at zero error: duplicate reads form")
	fmt.Println("2-cycles in the greedy graph (A->B and B->A are both legal under the")
	fmt.Println("out-degree rule) that fragment chains — an inherent artifact of the")
	fmt.Println("paper's greedy scheme. DedupeReads removes them; at 30x error-free the")
	fmt.Println("deduplicated assembly collapses to a single contig spanning the genome.")
}
