// Quickstart: generate a small synthetic dataset, assemble it with the
// LaSAGNA pipeline on a simulated K40, and print per-phase statistics and
// assembly quality.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/stats"
)

func main() {
	// A scaled-down human-chromosome-14-like dataset: 101 bp reads,
	// minimum overlap 63, ~11x coverage (Table I of the paper, at reduced
	// scale).
	profile := lasagna.Datasets[0].Scaled(0.25)
	genome, reads := lasagna.GenerateDataset(profile)
	fmt.Printf("dataset %s: genome %d bp, %d reads of %d bp (%.1fx coverage)\n",
		profile.Name, len(genome), reads.NumReads(), profile.ReadLen, profile.Coverage)

	workspace, err := os.MkdirTemp("", "lasagna-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(workspace)

	cfg := lasagna.DefaultConfig(workspace)
	cfg.MinOverlap = profile.MinOverlap
	cfg.GPU = lasagna.K40
	cfg.HostBlockPairs = 1 << 15 // m_h: force a couple of disk passes
	cfg.DeviceBlockPairs = 1 << 12
	cfg.VerifyOverlaps = true // prove the fingerprints produce no false edges

	res, err := lasagna.Assemble(cfg, reads)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\npipeline phases (map -> sort -> reduce -> compress):")
	for _, ps := range res.Phases {
		fmt.Println("  " + ps.String())
	}
	fmt.Printf("\nfingerprint pairs generated: %s across %d length partitions\n",
		stats.FormatCount(res.PairsGenerated), res.Partitions)
	fmt.Printf("overlap candidates: %s, accepted greedy edges: %s, false positives: %d\n",
		stats.FormatCount(res.CandidateEdges), stats.FormatCount(res.AcceptedEdges),
		res.FalsePositives)
	fmt.Printf("\nassembly: %s\n", res.ContigStats)

	// Every contig from error-free reads must be an exact substring of
	// the genome (in either orientation).
	gs, grc := genome.String(), genome.ReverseComplement().String()
	ok := 0
	for _, c := range res.Contigs {
		if containsSub(gs, c.String()) || containsSub(grc, c.String()) {
			ok++
		}
	}
	fmt.Printf("contigs matching the reference genome exactly: %d/%d\n", ok, len(res.Contigs))
}

func containsSub(haystack, needle string) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if haystack[i:i+len(needle)] == needle {
			return true
		}
	}
	return false
}
