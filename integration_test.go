package lasagna

import (
	"testing"

	"repro/internal/quality"
	"repro/internal/readsim"
)

// Integration tests exercising whole-pipeline behaviour across modules.

func TestIntegrationFullCoverageWithDedupe(t *testing.T) {
	genome := readsim.Genome(readsim.GenomeParams{Length: 8000, Seed: 301})
	reads := readsim.Simulate(genome, readsim.ReadParams{ReadLen: 70, Coverage: 25, Seed: 302})
	cfg := DefaultConfig(t.TempDir())
	cfg.MinOverlap = 40
	cfg.HostBlockPairs = 1 << 15
	cfg.DeviceBlockPairs = 1 << 11
	cfg.DedupeReads = true
	cfg.IncludeSingletons = true
	res, err := Assemble(cfg, reads)
	if err != nil {
		t.Fatal(err)
	}
	if res.DuplicatesRemoved == 0 {
		t.Error("25x coverage should contain duplicate reads")
	}
	rep := quality.Evaluate(genome, res.Contigs)
	if rep.MisassembledContigs != 0 {
		t.Errorf("%d misassembled contigs from error-free reads", rep.MisassembledContigs)
	}
	if rep.CoverageFraction() < 0.99 {
		t.Errorf("genome coverage = %.3f, want ~1.0", rep.CoverageFraction())
	}
	if rep.N50 < 1000 {
		t.Errorf("N50 = %d, expected long contigs from deduplicated 25x data", rep.N50)
	}
}

func TestIntegrationNaiveKernelIdenticalOutput(t *testing.T) {
	// The rejected per-read-thread kernel computes the same fingerprints,
	// so the whole assembly must be bit-identical; only modeled device
	// cost differs.
	_, reads := GenerateDataset(Datasets[0].Scaled(0.05))
	run := func(naive bool) *Result {
		cfg := DefaultConfig(t.TempDir())
		cfg.MinOverlap = Datasets[0].MinOverlap
		cfg.HostBlockPairs = 1 << 13
		cfg.DeviceBlockPairs = 1 << 10
		cfg.NaiveMapKernel = naive
		res, err := Assemble(cfg, reads)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(false), run(true)
	if a.AcceptedEdges != b.AcceptedEdges || len(a.Contigs) != len(b.Contigs) {
		t.Fatalf("kernel choice changed the assembly: %d/%d edges, %d/%d contigs",
			a.AcceptedEdges, b.AcceptedEdges, len(a.Contigs), len(b.Contigs))
	}
	for i := range a.Contigs {
		if !a.Contigs[i].Equal(b.Contigs[i]) {
			t.Fatalf("contig %d differs between kernels", i)
		}
	}
}

func TestIntegrationClusterOddNodeCount(t *testing.T) {
	_, reads := GenerateDataset(Datasets[0].Scaled(0.06))
	sc := DefaultConfig(t.TempDir())
	sc.MinOverlap = Datasets[0].MinOverlap
	sc.HostBlockPairs = 1 << 13
	sc.DeviceBlockPairs = 1 << 10
	sres, err := Assemble(sc, reads)
	if err != nil {
		t.Fatal(err)
	}
	cc := DefaultClusterConfig(t.TempDir(), 3)
	cc.MinOverlap = Datasets[0].MinOverlap
	cc.HostBlockPairs = 1 << 13
	cc.DeviceBlockPairs = 1 << 10
	cc.InputBlockReads = 37 // deliberately awkward block size
	cres, err := AssembleDistributed(cc, reads)
	if err != nil {
		t.Fatal(err)
	}
	if cres.AcceptedEdges != sres.AcceptedEdges || len(cres.Contigs) != len(sres.Contigs) {
		t.Fatalf("3-node cluster diverged: %d vs %d edges", cres.AcceptedEdges, sres.AcceptedEdges)
	}
	for i := range cres.Contigs {
		if !cres.Contigs[i].Equal(sres.Contigs[i]) {
			t.Fatalf("contig %d differs", i)
		}
	}
}

func TestIntegrationErrorReadsAssemble(t *testing.T) {
	genome := readsim.Genome(readsim.GenomeParams{Length: 5000, Seed: 303})
	reads := readsim.Simulate(genome, readsim.ReadParams{
		ReadLen: 70, Coverage: 20, ErrorRate: 0.01, Seed: 304,
	})
	cfg := DefaultConfig(t.TempDir())
	cfg.MinOverlap = 40
	cfg.HostBlockPairs = 1 << 14
	cfg.DeviceBlockPairs = 1 << 11
	cfg.VerifyOverlaps = true
	res, err := Assemble(cfg, reads)
	if err != nil {
		t.Fatal(err)
	}
	if res.FalsePositives != 0 {
		t.Errorf("errors must not cause fingerprint false positives (got %d)", res.FalsePositives)
	}
	if len(res.Contigs) == 0 {
		t.Fatal("noisy reads should still assemble into contigs")
	}
	// With substitution errors the contigs are no longer all exact genome
	// substrings, but any overlap the pipeline accepted was an exact
	// read-to-read match, so the contig set must still be nonempty and
	// internally consistent (every contig at least as long as the
	// shortest overhang).
	for i, c := range res.Contigs {
		if len(c) == 0 {
			t.Errorf("contig %d is empty", i)
		}
	}
}

func TestIntegrationDedupeSingleContigAtHighCoverage(t *testing.T) {
	genome := readsim.Genome(readsim.GenomeParams{Length: 4000, Seed: 305})
	reads := readsim.Simulate(genome, readsim.ReadParams{ReadLen: 80, Coverage: 30, Seed: 306})
	cfg := DefaultConfig(t.TempDir())
	cfg.MinOverlap = 45
	cfg.HostBlockPairs = 1 << 15
	cfg.DeviceBlockPairs = 1 << 11
	cfg.DedupeReads = true
	res, err := Assemble(cfg, reads)
	if err != nil {
		t.Fatal(err)
	}
	rep := quality.Evaluate(genome, res.Contigs)
	if rep.CoverageFraction() < 0.99 {
		t.Errorf("coverage = %.3f", rep.CoverageFraction())
	}
	if rep.NumContigs > 5 {
		t.Errorf("deduplicated 30x error-free assembly should be nearly one contig, got %d",
			rep.NumContigs)
	}
}
